//! Static invariant linter for the gcol workspace.
//!
//! The dynamic trace sanitizer (`gcol-simt::sanitize`) audits kernel
//! *traces* — it can only judge accesses that execute. This linter is
//! the static complement: a token-level walk over the workspace source
//! that enforces invariants on every path, executed or not. No `syn`,
//! no rustc plugin — the checked properties are shallow enough that a
//! comment/string-aware scanner is both sufficient and dependency-free
//! (this build environment has no route to a crates registry; see
//! `third_party/README.md`).
//!
//! ## Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `kernel-ctx` | inside a fn taking `impl KernelCtx`, every memory access goes through the ctx (`ld`/`ldg`/`st`/atomics/`local_*`); direct indexing `a[i]` is an error |
//! | `readonly-ldg` | a buffer field annotated `/// gcol-lint: readonly` is only ever passed to `ldg` |
//! | `hot-path` | a module tagged `//! gcol::hot_path` contains no `std::time`, randomness, or heap allocation |
//! | `io-error-line` | every variant of an `*Error` enum under `crates/graph/src/io/` carries a line number (struct variants need a `line` field; tuple variants must be `Io`/`TooLarge` or delegate to another `*Error` type) |
//! | `planner-model` | under `crates/plan/src/`, every decision constant lives in `model.rs`: any numeric literal other than the structural `0`/`1` (and `0.0`/`1.0`) elsewhere in the crate is an inline magic number |
//!
//! ## Pragmas
//!
//! * `//! gcol::hot_path` — first doc line of a module: tags the whole
//!   file for the `hot-path` rule.
//! * `/// gcol-lint: readonly` — doc line on a struct field: the field
//!   may only appear as an `ldg` argument.
//! * `// gcol-lint: allow(<rule>)` — suppresses `<rule>` findings on
//!   the same line and the line immediately following (put the reason
//!   in the same comment).
//!
//! `#[cfg(test)]` modules are skipped entirely: tests legitimately
//! allocate, sleep and index.
//!
//! ## Honest limitations
//!
//! Token-level analysis sees spellings, not semantics: a readonly
//! buffer copied into a local (`let s = self.src;`) escapes the
//! `readonly-ldg` check, and `hot-path` matches a fixed vocabulary of
//! allocating constructors. The rules are tuned so the *existing*
//! kernel idiom stays clean and each violation class the dynamic
//! sanitizer has actually caught is rejected — see the negative tests.

use std::collections::HashSet;
use std::fmt;

/// One linter finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as given to [`lint_file`].
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Rule identifier (`kernel-ctx`, `readonly-ldg`, `hot-path`,
    /// `io-error-line`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The comment/string-blanked view of one source file, with the pragma
/// facts collected while blanking.
struct FileView {
    /// Source with comment and string-literal *contents* replaced by
    /// spaces (delimiters and newlines preserved, so offsets and line
    /// numbers match the original).
    code: Vec<u8>,
    /// Byte offset of each line start (index 0 = line 1).
    line_starts: Vec<usize>,
    /// File carries the `//! gcol::hot_path` tag.
    hot_path: bool,
    /// `(field name, declaration line)` per `/// gcol-lint: readonly`.
    readonly_fields: Vec<(String, usize)>,
    /// `(line, rule)` suppressions from `gcol-lint: allow(rule)`.
    allows: HashSet<(usize, String)>,
}

impl FileView {
    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    fn allowed(&self, line: usize, rule: &str) -> bool {
        // A pragma suppresses its own line and the next line.
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows.contains(&(*l, rule.to_string()))
                || self.allows.contains(&(*l, "all".to_string()))
        })
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Overwrites a region with spaces, preserving newlines so line numbers
/// computed on the blanked view match the original source.
fn blank_keeping_newlines(region: &mut [u8]) {
    for b in region {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Builds the blanked code view and collects pragmas.
fn scan(source: &str) -> FileView {
    let bytes = source.as_bytes();
    let mut code = bytes.to_vec();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| line_starts.partition_point(|&s| s <= offset);

    let mut hot_path = false;
    let mut readonly_lines: Vec<usize> = Vec::new();
    let mut allows: HashSet<(usize, String)> = HashSet::new();

    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                let line = line_of(start);
                let trimmed = text.trim_start_matches('/').trim_start_matches('!').trim();
                if text.starts_with("//!") && trimmed == "gcol::hot_path" {
                    hot_path = true;
                }
                if text.starts_with("///") && trimmed == "gcol-lint: readonly" {
                    readonly_lines.push(line);
                }
                if let Some(rest) = trimmed.strip_prefix("gcol-lint: allow(") {
                    if let Some(end) = rest.find(')') {
                        allows.insert((line, rest[..end].trim().to_string()));
                    }
                }
                code[start..i].fill(b' ');
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank_keeping_newlines(&mut code[start..i]);
            }
            b'"' => {
                // Plain string literal: blank the contents.
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    let step = if bytes[i] == b'\\' { 2 } else { 1 };
                    let end = (i + step).min(bytes.len());
                    blank_keeping_newlines(&mut code[i..end]);
                    i += step;
                }
                i += 1;
            }
            b'r' if bytes.get(i + 1) == Some(&b'"')
                || (bytes.get(i + 1) == Some(&b'#')
                    && !i.checked_sub(1).is_some_and(|p| is_ident(bytes[p]))) =>
            {
                // Raw string r"..." / r#"..."# (not an identifier ending in r).
                if i.checked_sub(1).is_some_and(|p| is_ident(bytes[p])) {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    i += 1;
                    continue;
                }
                j += 1;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let end = bytes[j..]
                    .windows(closer.len())
                    .position(|w| w == closer.as_slice())
                    .map(|p| j + p)
                    .unwrap_or(bytes.len());
                blank_keeping_newlines(&mut code[j..end]);
                i = (end + closer.len()).min(bytes.len());
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with ' within
                // a couple of bytes; a lifetime does not.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    let end = j.min(code.len());
                    code[i + 1..end].fill(b' ');
                    i = j + 1;
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    code[i + 1] = b' ';
                    i += 3;
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }

    // Blank `#[cfg(test)] mod … { … }` blocks: tests may allocate,
    // sleep and index freely.
    blank_test_mods(&mut code);

    // Resolve each readonly marker to the next field declaration.
    let mut readonly_fields = Vec::new();
    'marker: for marker_line in readonly_lines {
        for l in marker_line..line_starts.len() {
            let start = line_starts[l];
            let end = line_starts
                .get(l + 1)
                .copied()
                .unwrap_or(code.len())
                .min(code.len());
            let text = String::from_utf8_lossy(&code[start..end]);
            let t = text.trim();
            if t.is_empty() || t.starts_with('#') {
                continue; // doc line (blanked) or attribute
            }
            let t = t.strip_prefix("pub").map(str::trim_start).unwrap_or(t);
            let name: String = t.chars().take_while(|c| is_ident(*c as u8)).collect();
            if !name.is_empty() && t[name.len()..].trim_start().starts_with(':') {
                readonly_fields.push((name, l + 1));
            }
            continue 'marker;
        }
    }

    FileView {
        code,
        line_starts,
        hot_path,
        readonly_fields,
        allows,
    }
}

/// Blanks every `#[cfg(test)]`-attributed `mod` block in place.
fn blank_test_mods(code: &mut [u8]) {
    let marker = b"#[cfg(test)]";
    let mut from = 0;
    while let Some(p) = find(code, marker, from) {
        from = p + marker.len();
        // The next item must be `mod name {`; skip other attributes.
        let mut i = from;
        loop {
            while i < code.len() && (code[i] as char).is_whitespace() {
                i += 1;
            }
            if code.get(i) == Some(&b'#') {
                while i < code.len() && code[i] != b']' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            break;
        }
        if !slice_starts_with_word(code, i, b"mod") {
            continue;
        }
        let Some(open) = code[i..].iter().position(|&b| b == b'{' || b == b';') else {
            continue;
        };
        if code[i + open] == b';' {
            continue; // out-of-line test module (a sibling file)
        }
        let mut depth = 0usize;
        let mut j = i + open;
        while j < code.len() {
            match code[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for k in (i + open)..=j.min(code.len() - 1) {
            if code[k] != b'\n' {
                code[k] = b' ';
            }
        }
        from = j.min(code.len());
    }
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

fn slice_starts_with_word(code: &[u8], at: usize, word: &[u8]) -> bool {
    code.len() >= at + word.len()
        && &code[at..at + word.len()] == word
        && code.get(at + word.len()).is_none_or(|&b| !is_ident(b))
}

/// Previous non-whitespace byte before `at`.
fn prev_sig(code: &[u8], at: usize) -> Option<u8> {
    code[..at]
        .iter()
        .rev()
        .copied()
        .find(|b| !(*b as char).is_whitespace())
}

/// Lints one file. `path` is used for diagnostics and to decide whether
/// the `io-error-line` rule applies (paths under `graph/src/io`).
pub fn lint_file(path: &str, source: &str) -> Vec<Diagnostic> {
    let view = scan(source);
    let mut diags = Vec::new();
    rule_kernel_ctx(path, &view, &mut diags);
    rule_readonly_ldg(path, &view, &mut diags);
    if view.hot_path {
        rule_hot_path(path, &view, &mut diags);
    }
    let norm = path.replace('\\', "/");
    if norm.contains("graph/src/io") {
        rule_io_error_line(path, &view, &mut diags);
    }
    if norm.contains("plan/src") && !norm.ends_with("model.rs") {
        rule_planner_model(path, &view, &mut diags);
    }
    diags.retain(|d| !view.allowed(d.line, d.rule));
    diags.sort_by_key(|d| d.line);
    diags
}

/// `kernel-ctx`: inside fns taking `impl KernelCtx`, flag `expr[...]`
/// indexing (an identifier, `)` or `]` directly followed by `[`).
fn rule_kernel_ctx(path: &str, view: &FileView, diags: &mut Vec<Diagnostic>) {
    let code = &view.code;
    let mut from = 0;
    while let Some(fn_at) = find(code, b"fn ", from) {
        from = fn_at + 3;
        if fn_at > 0 && is_ident(code[fn_at - 1]) {
            continue; // `…fn ` inside an identifier
        }
        // Parameter list: first `(…)` after the name/generics.
        let Some(open) = code[fn_at..].iter().position(|&b| b == b'(') else {
            continue;
        };
        let params_start = fn_at + open;
        let Some(params_end) = matching(code, params_start, b'(', b')') else {
            continue;
        };
        let params = &code[params_start..=params_end];
        if find(params, b"impl KernelCtx", 0).is_none() {
            continue;
        }
        // Body: `{` before any `;` means this fn has one.
        let mut k = params_end + 1;
        while k < code.len() && code[k] != b'{' && code[k] != b';' {
            k += 1;
        }
        if k >= code.len() || code[k] == b';' {
            continue; // trait method declaration
        }
        let Some(body_end) = matching(code, k, b'{', b'}') else {
            continue;
        };
        let mut i = k + 1;
        while i < body_end {
            if code[i] == b'[' {
                if let Some(p) = prev_sig(code, i) {
                    if is_ident(p) || p == b')' || p == b']' {
                        let line = view.line_of(i);
                        diags.push(Diagnostic {
                            file: path.to_string(),
                            line,
                            rule: "kernel-ctx",
                            message: "direct indexing inside a kernel; device memory \
                                      must go through KernelCtx (ld/ldg/st/atomics) and \
                                      scratch through local_ld/local_st"
                                .to_string(),
                        });
                    }
                }
                // Skip the index expression so `a[b[i]]` reports once.
                if let Some(close) = matching(code, i, b'[', b']') {
                    i = close;
                }
            }
            i += 1;
        }
        from = body_end;
    }
}

/// `readonly-ldg`: a field annotated `/// gcol-lint: readonly` may only
/// appear (as a dotted access) in argument position of an `ldg` call.
fn rule_readonly_ldg(path: &str, view: &FileView, diags: &mut Vec<Diagnostic>) {
    for (field, decl_line) in &view.readonly_fields {
        let code = &view.code;
        // One forward pass maintaining the enclosing-call stack: the
        // identifier token directly before each open paren.
        let mut stack: Vec<Option<String>> = Vec::new();
        let mut i = 0;
        while i < code.len() {
            match code[i] {
                b'(' => {
                    stack.push(callee_before(code, i));
                    i += 1;
                }
                b')' => {
                    stack.pop();
                    i += 1;
                }
                b'.' if slice_starts_with_word(code, i + 1, field.as_bytes()) => {
                    let after = i + 1 + field.len();
                    // `.field(` is a method call named like the field,
                    // not a buffer access.
                    if code.get(after) == Some(&b'(') {
                        i = after;
                        continue;
                    }
                    let enclosing = stack.iter().rev().flatten().next();
                    if enclosing.map(String::as_str) != Some("ldg") {
                        diags.push(Diagnostic {
                            file: path.to_string(),
                            line: view.line_of(i),
                            rule: "readonly-ldg",
                            message: format!(
                                "buffer `{field}` is marked read-only \
                                 (gcol-lint: readonly at line {decl_line}) but is \
                                 accessed outside an ldg() call"
                            ),
                        });
                    }
                    i = after;
                }
                _ => i += 1,
            }
        }
    }
}

/// Identifier token immediately before the `(` at `at` (the callee of
/// that call), if any.
fn callee_before(code: &[u8], at: usize) -> Option<String> {
    let mut j = at;
    while j > 0 && (code[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident(code[j - 1]) {
        j -= 1;
    }
    if j == end {
        return None;
    }
    Some(String::from_utf8_lossy(&code[j..end]).into_owned())
}

/// `hot-path`: no time, randomness or allocation in tagged modules.
fn rule_hot_path(path: &str, view: &FileView, diags: &mut Vec<Diagnostic>) {
    const FORBIDDEN: &[(&str, &str)] = &[
        ("std::time", "time"),
        ("Instant", "time"),
        ("SystemTime", "time"),
        ("thread_rng", "randomness"),
        ("rand::", "randomness"),
        ("Vec::new", "allocation"),
        ("Vec::with_capacity", "allocation"),
        ("vec!", "allocation"),
        ("Box::new", "allocation"),
        ("String::new", "allocation"),
        ("String::from", "allocation"),
        ("format!", "allocation"),
        ("to_vec", "allocation"),
        ("to_string", "allocation"),
        ("to_owned", "allocation"),
        ("collect", "allocation"),
        ("with_capacity", "allocation"),
        ("HashMap::new", "allocation"),
        ("HashSet::new", "allocation"),
        ("BTreeMap::new", "allocation"),
        ("VecDeque::new", "allocation"),
        ("Rc::new", "allocation"),
        ("Arc::new", "allocation"),
    ];
    let code = &view.code;
    for (pat, class) in FORBIDDEN {
        let mut from = 0;
        while let Some(p) = find(code, pat.as_bytes(), from) {
            from = p + pat.len();
            let before_ok = p == 0 || !is_ident(code[p - 1]);
            let last = pat.as_bytes()[pat.len() - 1];
            let after_ok = !is_ident(last) || code.get(from).is_none_or(|&b| !is_ident(b));
            if before_ok && after_ok {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: view.line_of(p),
                    rule: "hot-path",
                    message: format!(
                        "`{pat}` ({class}) in a module tagged `//! gcol::hot_path`; \
                         hot-path modules must be time-, randomness- and \
                         allocation-free"
                    ),
                });
            }
        }
    }
}

/// `io-error-line`: every variant of an `*Error` enum carries a line
/// number. Struct variants need a `line` field; tuple variants must be
/// `Io`/`TooLarge` or wrap another `*Error` type (delegation); unit
/// variants are always an error.
fn rule_io_error_line(path: &str, view: &FileView, diags: &mut Vec<Diagnostic>) {
    let code = &view.code;
    let mut from = 0;
    while let Some(at) = find(code, b"enum ", from) {
        from = at + 5;
        if at > 0 && is_ident(code[at - 1]) {
            continue;
        }
        let mut i = at + 5;
        while i < code.len() && (code[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < code.len() && is_ident(code[i]) {
            i += 1;
        }
        let name = String::from_utf8_lossy(&code[name_start..i]).into_owned();
        if !name.ends_with("Error") {
            continue;
        }
        while i < code.len() && code[i] != b'{' {
            i += 1;
        }
        let Some(body_end) = matching(code, i, b'{', b'}') else {
            continue;
        };
        let mut j = i + 1;
        while j < body_end {
            // Skip whitespace, attributes, commas.
            while j < body_end && ((code[j] as char).is_whitespace() || code[j] == b',') {
                j += 1;
            }
            if code.get(j) == Some(&b'#') {
                while j < body_end && code[j] != b']' {
                    j += 1;
                }
                j += 1;
                continue;
            }
            if j >= body_end {
                break;
            }
            let vstart = j;
            while j < body_end && is_ident(code[j]) {
                j += 1;
            }
            if j == vstart {
                j += 1;
                continue;
            }
            let vname = String::from_utf8_lossy(&code[vstart..j]).into_owned();
            while j < body_end && (code[j] as char).is_whitespace() {
                j += 1;
            }
            let vline = view.line_of(vstart);
            match code.get(j) {
                Some(&b'{') => {
                    let vend = matching(code, j, b'{', b'}').unwrap_or(body_end);
                    if !struct_body_has_line_field(&code[j..=vend]) {
                        diags.push(Diagnostic {
                            file: path.to_string(),
                            line: vline,
                            rule: "io-error-line",
                            message: format!(
                                "variant `{name}::{vname}` must carry a 1-based \
                                 `line` field anchoring the failure to its input line"
                            ),
                        });
                    }
                    j = vend + 1;
                }
                Some(&b'(') => {
                    let vend = matching(code, j, b'(', b')').unwrap_or(body_end);
                    let payload = String::from_utf8_lossy(&code[j..=vend]).into_owned();
                    let delegates = payload.contains("Error");
                    let exempt = vname == "Io" || vname == "TooLarge" || delegates;
                    if !exempt {
                        diags.push(Diagnostic {
                            file: path.to_string(),
                            line: vline,
                            rule: "io-error-line",
                            message: format!(
                                "tuple variant `{name}::{vname}` carries no line \
                                 number (only `Io`, `TooLarge`, and delegation to \
                                 another *Error type are exempt)"
                            ),
                        });
                    }
                    j = vend + 1;
                }
                _ => {
                    diags.push(Diagnostic {
                        file: path.to_string(),
                        line: vline,
                        rule: "io-error-line",
                        message: format!("unit variant `{name}::{vname}` carries no line number"),
                    });
                }
            }
        }
        from = body_end;
    }
}

/// `planner-model`: outside `model.rs`, the plan crate may use only the
/// structural literals `0`/`1` (`0.0`/`1.0`) — defaults, identities,
/// "one shard". Anything else is a decision threshold or coefficient
/// that belongs in the checked-in table, where `planner-calibrate`
/// refreshes it and reviewers can see every number the planner
/// conditions on in one place.
fn rule_planner_model(path: &str, view: &FileView, diags: &mut Vec<Diagnostic>) {
    let code = &view.code;
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // Token start only: skip digits inside identifiers (`f64`,
        // `x2`) and tuple/float tails (`pair.0`, handled via `.`).
        if i > 0 && (is_ident(code[i - 1]) || code[i - 1] == b'.') {
            i += 1;
            continue;
        }
        let start = i;
        while i < code.len() && (code[i].is_ascii_digit() || code[i] == b'_') {
            i += 1;
        }
        // Fractional part: consume `.` only when a digit follows, so a
        // method call on an integer literal (`2.pow(…)`) stops cleanly.
        if code.get(i) == Some(&b'.') && code.get(i + 1).is_some_and(u8::is_ascii_digit) {
            i += 1;
            while i < code.len() && (code[i].is_ascii_digit() || code[i] == b'_') {
                i += 1;
            }
        }
        // Exponent.
        if matches!(code.get(i), Some(&b'e') | Some(&b'E')) {
            let mut j = i + 1;
            if matches!(code.get(j), Some(&b'+') | Some(&b'-')) {
                j += 1;
            }
            if code.get(j).is_some_and(u8::is_ascii_digit) {
                i = j;
                while i < code.len() && code[i].is_ascii_digit() {
                    i += 1;
                }
            }
        }
        let literal: String = String::from_utf8_lossy(&code[start..i]).replace('_', "");
        // Type suffix (`u32`, `f64`, `usize`) — part of the token, not
        // of the value.
        while i < code.len() && is_ident(code[i]) {
            i += 1;
        }
        let value = literal.parse::<f64>();
        if !matches!(value, Ok(v) if v == 0.0 || v == 1.0) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: view.line_of(start),
                rule: "planner-model",
                message: format!(
                    "inline numeric literal `{literal}` in planner logic; every \
                     decision constant belongs in crates/plan/src/model.rs \
                     (only the structural 0/1 are allowed elsewhere)"
                ),
            });
        }
    }
}

fn struct_body_has_line_field(body: &[u8]) -> bool {
    let mut from = 0;
    while let Some(p) = find(body, b"line", from) {
        from = p + 4;
        let before_ok = p == 0 || !is_ident(body[p - 1]);
        let mut j = p + 4;
        if before_ok && body.get(j).is_none_or(|&b| !is_ident(b)) {
            while j < body.len() && (body[j] as char).is_whitespace() {
                j += 1;
            }
            if body.get(j) == Some(&b':') {
                return true;
            }
        }
    }
    false
}

/// Offset of the delimiter matching the opener at `open` (which must be
/// `opener`), or `None` if unbalanced.
fn matching(code: &[u8], open: usize, opener: u8, closer: u8) -> Option<usize> {
    debug_assert_eq!(code[open], opener);
    let mut depth = 0usize;
    for (i, &b) in code.iter().enumerate().skip(open) {
        if b == opener {
            depth += 1;
        } else if b == closer {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_preserves_line_numbers() {
        let v = scan("let a = 1; // comment [x]\nlet b = \"str[2]\";\n");
        let code = String::from_utf8(v.code).unwrap();
        assert!(!code.contains("comment"));
        assert!(!code.contains("str[2]"));
        assert_eq!(code.matches('\n').count(), 2);
    }

    #[test]
    fn pragmas_are_collected() {
        let v = scan(
            "//! gcol::hot_path\nstruct S {\n    /// gcol-lint: readonly\n    src: Buffer<u32>,\n}\n// gcol-lint: allow(hot-path) reason\nlet x = 1;\n",
        );
        assert!(v.hot_path);
        assert_eq!(v.readonly_fields, vec![("src".to_string(), 4)]);
        assert!(v.allows.contains(&(6, "hot-path".to_string())));
    }

    #[test]
    fn cfg_test_mods_are_skipped() {
        let src = "fn k(t: &mut impl KernelCtx) { t.ld(b, 0); }\n#[cfg(test)]\nmod tests {\n    fn k2(t: &mut impl KernelCtx) { let x = a[0]; }\n}\n";
        assert!(lint_file("x.rs", src).is_empty());
    }

    #[test]
    fn planner_model_flags_seeded_magic_numbers() {
        // A seeded violation of each literal shape the rule must catch:
        // integer, float, underscored, exponent, suffixed.
        let src = "\
fn plan() {\n\
    let a = 3;\n\
    let b = 0.25;\n\
    let c = 1_000_000;\n\
    let d = 1e3;\n\
    let e = 42u32;\n\
}\n";
        let diags = lint_file("crates/plan/src/lib.rs", src);
        let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6], "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "planner-model"));
        assert!(diags[1].message.contains("0.25"), "{}", diags[1].message);
        assert!(
            diags[2].message.contains("1000000"),
            "underscores are stripped from the reported literal: {}",
            diags[2].message
        );
    }

    #[test]
    fn planner_model_allows_structural_literals_and_exempt_files() {
        // 0/1 in all spellings, tuple access, digits in identifiers,
        // numbers inside strings/comments/tests: all fine.
        let src = "\
fn plan(xs: &[f64]) -> f64 {\n\
    let zero = 0;\n\
    let one = 1.0;\n\
    let z2 = 0.0_f64;\n\
    let first = (xs[0], 1u32);\n\
    let t = first.0; // threshold 0.75 lives in model.rs\n\
    let s = \"cap 64.0\";\n\
    t + xs.len() as f64\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { assert_eq!(super::plan(&[2.5]) as u32, 99); }\n\
}\n";
        assert!(lint_file("crates/plan/src/lib.rs", src).is_empty());
        // model.rs is the one place magic numbers belong.
        let table = "pub const CAP: f64 = 64.0;\npub const LAMBDA: f64 = 1e-4;\n";
        assert!(lint_file("crates/plan/src/model.rs", table).is_empty());
        // …and the rule only applies under plan/src at all.
        assert!(lint_file("crates/core/src/lib.rs", "const N: usize = 37;\n").is_empty());
    }

    #[test]
    fn planner_model_respects_allow_pragma() {
        let src = "// gcol-lint: allow(planner-model) protocol version, not a decision\n\
const WIRE_VERSION: u32 = 2;\n";
        assert!(lint_file("crates/plan/src/lib.rs", src).is_empty());
    }
}

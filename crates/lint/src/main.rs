//! `gcol-lint` — walks every `crates/*/src/**/*.rs` in the workspace,
//! runs the invariant rules from the library, prints one
//! `file:line: rule: message` diagnostic per finding, and exits
//! nonzero if anything fired. Run from the workspace root (CI does
//! `cargo run -p gcol-lint`); pass explicit paths to lint a subset.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files = if args.is_empty() {
        let root = workspace_root();
        let mut files = Vec::new();
        let crates = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates) {
            Ok(rd) => rd.filter_map(|e| e.ok()).map(|e| e.path()).collect(),
            Err(e) => {
                eprintln!("gcol-lint: cannot read {}: {e}", crates.display());
                return ExitCode::FAILURE;
            }
        };
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files);
            }
        }
        files
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut findings = 0usize;
    let mut linted = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gcol-lint: cannot read {}: {e}", file.display());
                findings += 1;
                continue;
            }
        };
        linted += 1;
        for diag in gcol_lint::lint_file(&file.display().to_string(), &source) {
            println!("{diag}");
            findings += 1;
        }
    }

    if findings > 0 {
        eprintln!("gcol-lint: {findings} finding(s) across {linted} file(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("gcol-lint: clean ({linted} files)");
        ExitCode::SUCCESS
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory (which must contain `crates/`).
fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

//! The planner's decision table — **every number the planner conditions
//! on lives in this file**, enforced by the `planner-model` lint rule
//! (no inline magic thresholds in `plan()` logic).
//!
//! The per-scheme coefficient rows are *fitted offline* by the
//! `gcol-bench planner-calibrate` experiment (ridge least squares over
//! the generated Table I suite at several scales, modeled simt times)
//! and checked in here as data: there is no runtime fitting. To refresh
//! after changing a kernel or the suite, run
//!
//! ```text
//! cargo run --release -p gcol-bench -- planner-calibrate --scale 13
//! ```
//!
//! and paste the printed `MODELS` block over the one below.
//!
//! ## Model shape
//!
//! Both predictors are log-linear in the [`crate::features`] vector
//! `f(profile)` (a `1` bias, `ln(1+x)` transforms of size, mean degree,
//! degree CV and max-degree ratio, a *signed* `ln(1+|x|)` of skew, and a
//! squared edge-count term — the curvature that captures the crossover
//! from the launch-overhead regime, where the sequential baseline wins,
//! to the throughput regime, where the GPU schemes do):
//!
//! * `predicted_ms     = exp(time_w · f)`
//! * `predicted_colors = exp(color_w · f)`
//!
//! Interpretability is the point: each row reads as "this scheme's cost
//! grows with edges at weight `w_m`, is penalized by degree spread at
//! weight `w_cv`, …" — and the fitted signs line up with the paper's
//! narrative (csrcolor pays per sweep on skewed graphs, data-driven
//! schemes shrug off tails, sequential is linear and color-optimal-ish).

use gcol_core::{BackendKind, ExchangeKind, Scheme};

/// Number of entries in the feature vector (see [`crate::features`]).
pub const NUM_FEATURES: usize = 8;

/// Vertex/edge counts are scaled to thousands before the `ln(1+x)`
/// transform so the size features carry O(1)–O(10) values over the
/// calibration scales and the fitted coefficients stay small.
pub const SIZE_SCALE: f64 = 1e3;

/// Upper bound on any single feature value — keeps dot products finite
/// for absurd (e.g. `IngestLimits`-sized, or proptest-generated) inputs.
pub const FEATURE_CAP: f64 = 64.0;

/// Clamp on the log-space prediction before `exp` — predictions saturate
/// instead of overflowing to infinity.
pub const EXP_CAP: f64 = 60.0;

/// Default color slack for [`crate::Slo::Balanced`]: accept up to
/// (1 + slack) × the fewest predicted colors, then take the fastest.
pub const BALANCED_DEFAULT_SLACK: f64 = 0.25;

/// Sharding beyond this device count has never paid off in the
/// `shardscale` A/B (PR 6): exchange rounds start to dominate.
pub const MAX_USEFUL_SHARDS: usize = 4;

/// Below this stored-edge count a graph fits one device comfortably and
/// exchange overhead swamps any compute win; the planner never shards.
pub const SHARD_MIN_EDGES: usize = 1_000_000;

/// Backend preference under every SLO, filtered by the resource
/// envelope: native wall clock beats the modeled simulator when the
/// embedder allows it, and the sanitizer is a diagnostic backend of last
/// resort (identical results, strictly slower).
pub const BACKEND_PREFERENCE: [BackendKind; 3] = [
    BackendKind::Native,
    BackendKind::Simt,
    BackendKind::Sanitize,
];

/// Wire encoding for sharded plans: the delta codec won the PR 6 A/B on
/// every graph/scheme pair.
pub const PLAN_EXCHANGE: ExchangeKind = ExchangeKind::Delta;

/// Scheme returned when the model table is empty or no candidate scores
/// finite — the one scheme that can never be misconfigured.
pub const FALLBACK_SCHEME: Scheme = Scheme::Sequential;

/// Protocol/CLI names of the [`crate::Slo`] variants.
pub const SLO_NAMES: [&str; 3] = ["fastest-wall", "fewest-colors", "balanced"];

/// One row of the decision table: a scheme and its two fitted
/// log-linear coefficient vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeModel {
    /// The candidate scheme this row scores.
    pub scheme: Scheme,
    /// Coefficients of `ln(predicted_ms)` over the feature vector.
    pub time_w: [f64; NUM_FEATURES],
    /// Coefficients of `ln(predicted_colors)` over the feature vector.
    pub color_w: [f64; NUM_FEATURES],
}

/// Measured P=4 speedup factors from the PR 6 `shardscale` A/B, per
/// backend. A factor ≤ 1 means sharding loses on that backend and the
/// planner keeps the job on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardGain {
    /// The GPU-resident scheme.
    pub scheme: Scheme,
    /// P=4 vs P=1 speedup on the modeled simt backend (rmat-er s15).
    pub simt: f64,
    /// P=4 vs P=1 wall-clock speedup on the native backend (rmat-er s17).
    pub native: f64,
}

/// P=4 gains recorded in BENCH_simt.json `sharded_scaling` (PR 6):
/// `speedup_p4_delta` from the simt modeled A/B at scale 15 and
/// `speedup_p4` from the native wall-clock table at scale 17.
pub static SHARD_GAINS: [ShardGain; 8] = [
    ShardGain {
        scheme: Scheme::ThreeStepGm,
        simt: 5.61,
        native: 2.01,
    },
    ShardGain {
        scheme: Scheme::TopoBase,
        simt: 0.80,
        native: 2.07,
    },
    ShardGain {
        scheme: Scheme::TopoLdg,
        simt: 0.63,
        native: 1.75,
    },
    ShardGain {
        scheme: Scheme::DataBase,
        simt: 0.66,
        native: 1.22,
    },
    ShardGain {
        scheme: Scheme::DataLdg,
        simt: 0.56,
        native: 1.16,
    },
    ShardGain {
        scheme: Scheme::CsrColor,
        simt: 1.74,
        native: 10.37,
    },
    ShardGain {
        scheme: Scheme::DataAtomic,
        simt: 0.65,
        native: 1.10,
    },
    ShardGain {
        scheme: Scheme::TopoEdge,
        simt: 1.07,
        native: 2.63,
    },
];

/// The fitted decision table: the eight GPU-resident schemes plus the
/// sequential baseline. CPU-rayon context schemes are excluded on
/// purpose — their cost is host wall clock, which is nondeterministic,
/// and the planner's regret gate runs on modeled times only.
///
/// Generated by `gcol-bench planner-calibrate` (see module docs); do not
/// hand-tune individual weights.
pub static MODELS: [SchemeModel; 9] = [
    SchemeModel {
        scheme: Scheme::Sequential,
        time_w: [
            -5.531746, -0.009671, 1.123517, -0.134800, -0.159711, 0.071301, -0.030404, -0.011352,
        ],
        color_w: [
            -0.730543, 0.201562, -0.069863, 0.987736, -1.045196, 0.436959, 0.313556, -0.011793,
        ],
    },
    SchemeModel {
        scheme: Scheme::ThreeStepGm,
        time_w: [
            -3.834532, 2.024811, -1.233622, 1.723259, 2.225492, -0.575414, 0.054024, 0.024623,
        ],
        color_w: [
            0.819144, 0.047632, -0.016521, 0.459465, 1.552917, -0.017427, 0.015748, -0.002376,
        ],
    },
    SchemeModel {
        scheme: Scheme::TopoBase,
        time_w: [
            -1.463998, 2.490163, -2.065775, 1.601186, 5.426386, -0.914560, 0.052895, 0.000949,
        ],
        color_w: [
            0.666264, 0.172558, -0.081193, 0.568284, 1.717468, -0.049994, 0.015400, -0.007246,
        ],
    },
    SchemeModel {
        scheme: Scheme::TopoLdg,
        time_w: [
            -1.228929, 2.380299, -1.941329, 1.366946, 5.587104, -0.955899, 0.069854, -0.002910,
        ],
        color_w: [
            0.666264, 0.172558, -0.081193, 0.568284, 1.717468, -0.049994, 0.015400, -0.007246,
        ],
    },
    SchemeModel {
        scheme: Scheme::DataBase,
        time_w: [
            -1.721451, 0.605171, -0.349613, 0.108268, 2.905273, 0.356821, -0.154466, -0.016252,
        ],
        color_w: [
            0.767036, 0.135451, -0.053481, 0.525841, 1.985423, -0.151250, 0.010667, -0.005255,
        ],
    },
    SchemeModel {
        scheme: Scheme::DataLdg,
        time_w: [
            -1.522257, 0.443360, -0.218381, -0.111956, 2.907674, 0.342035, -0.152773, -0.014619,
        ],
        color_w: [
            0.767036, 0.135451, -0.053481, 0.525841, 1.985423, -0.151250, 0.010667, -0.005255,
        ],
    },
    SchemeModel {
        scheme: Scheme::CsrColor,
        time_w: [
            -6.035389, 1.636816, -1.289358, 2.613373, 1.406641, 0.335238, -0.127127, -0.006623,
        ],
        color_w: [
            0.520975, -0.015307, 0.099859, 0.797730, 0.379706, 0.316991, -0.084156, -0.003719,
        ],
    },
    SchemeModel {
        scheme: Scheme::DataAtomic,
        time_w: [
            -1.507641, 0.635604, -0.377963, 0.068937, 3.183393, 0.264604, -0.135704, -0.015603,
        ],
        color_w: [
            0.767036, 0.135451, -0.053481, 0.525841, 1.985423, -0.151250, 0.010667, -0.005255,
        ],
    },
    SchemeModel {
        scheme: Scheme::TopoEdge,
        time_w: [
            -0.454798, 2.063495, -1.795140, 0.798371, 5.561929, -1.179797, 0.075908, 0.041904,
        ],
        color_w: [
            0.666264, 0.172558, -0.081193, 0.568284, 1.717468, -0.049994, 0.015400, -0.007246,
        ],
    },
];

//! # gcol-plan — the adaptive scheme/backend planner
//!
//! Maps a cheap [`GraphProfile`] (one O(n) pass, extracted by
//! `gcol-graph`), a typed service-level objective ([`Slo`]) and a
//! resource envelope ([`Resources`]) to a concrete [`Plan`]: which
//! [`Scheme`] to run, on which backend, across how many shard devices,
//! with which ghost-frontier encoding.
//!
//! The decision procedure is an interpretable score table, not a learned
//! black box: per scheme, two log-linear predictors (modeled
//! milliseconds and color count) over the [`features`] vector. The
//! coefficients are fitted offline by `gcol-bench planner-calibrate`
//! and checked in as data in [`model`] — `plan()` itself contains no
//! magic numbers (the `planner-model` lint rule enforces this).
//!
//! `Planner::plan` is **total**: for any profile — empty graph, single
//! vertex, a star, a clique, header-only `IngestLimits`-sized estimates,
//! even non-finite feature values — it returns a valid plan (scheme from
//! the candidate table, shard count within budget) and never panics.
//! Front ends resolve `SchemeChoice::Auto` through it *before*
//! fingerprinting, so cache keys always name the concrete plan that ran.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;

use gcol_core::{
    BackendKind, ColorError, ColorOptions, Colorer, Coloring, ExchangeKind, JobSpec, Scheme,
};
use gcol_graph::{Csr, GraphProfile};
use gcol_simt::Device;

pub use model::{SchemeModel, MODELS, NUM_FEATURES};

/// The service-level objective a request optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Slo {
    /// Minimize wall time; color count is whatever falls out.
    #[default]
    FastestWall,
    /// Minimize the number of colors; run time is secondary (Besta et
    /// al.'s quality-guarantee framing: fewer classes, better downstream
    /// scheduling).
    FewestColors,
    /// Accept up to `(1 + color_slack)` × the fewest predicted colors,
    /// then take the fastest candidate inside that band.
    Balanced {
        /// Fractional color overhead tolerated over the predicted best.
        color_slack: f64,
    },
}

impl Slo {
    /// The default balanced objective
    /// ([`model::BALANCED_DEFAULT_SLACK`] color slack).
    pub fn balanced() -> Self {
        Slo::Balanced {
            color_slack: model::BALANCED_DEFAULT_SLACK,
        }
    }

    /// Protocol/CLI name of this objective.
    pub fn name(&self) -> &'static str {
        match self {
            Slo::FastestWall => "fastest-wall",
            Slo::FewestColors => "fewest-colors",
            Slo::Balanced { .. } => "balanced",
        }
    }

    /// Every named objective, for CLIs and error messages.
    pub fn all_names() -> &'static [&'static str] {
        &model::SLO_NAMES
    }
}

impl std::fmt::Display for Slo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Slo {
    type Err = String;

    /// Parses an objective name: `"fastest-wall"` (alias `"fastest"`),
    /// `"fewest-colors"` (alias `"colors"`), or `"balanced"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fastest-wall" | "fastest" | "wall" => Ok(Slo::FastestWall),
            "fewest-colors" | "fewest" | "colors" => Ok(Slo::FewestColors),
            "balanced" => Ok(Slo::balanced()),
            other => Err(format!(
                "unknown slo {other:?} (expected one of: {})",
                Slo::all_names().join(", ")
            )),
        }
    }
}

/// What the embedder makes available to a plan: which execution backends
/// may run the job and how many shard devices it may spread across.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resources {
    /// Allowed execution backends. Preference among them is the
    /// planner's ([`model::BACKEND_PREFERENCE`]); an empty list falls
    /// back to the default backend.
    pub backends: Vec<BackendKind>,
    /// Device/shard budget: the plan's `num_shards` never exceeds this
    /// (and never exceeds [`model::MAX_USEFUL_SHARDS`]).
    pub max_shards: usize,
}

impl Resources {
    /// A single backend with a shard budget — how the serve front end
    /// translates a request's explicit `backend`/`shards` fields.
    pub fn single(backend: BackendKind, max_shards: usize) -> Self {
        Self {
            backends: vec![backend],
            max_shards,
        }
    }

    /// The envelope implied by a request's [`ColorOptions`]: the chosen
    /// backend is the only one allowed, `num_shards` is the budget.
    pub fn from_options(opts: &ColorOptions) -> Self {
        Self::single(opts.backend, opts.num_shards)
    }
}

impl Default for Resources {
    fn default() -> Self {
        Self::from_options(&ColorOptions::default())
    }
}

/// A fully resolved execution plan, plus the predictions that chose it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// The scheme to run.
    pub scheme: Scheme,
    /// The backend to run it on.
    pub backend: BackendKind,
    /// Shard-device count (1 = the single-device driver).
    pub num_shards: usize,
    /// Ghost-frontier encoding for sharded runs (ignored at 1 shard).
    pub exchange: ExchangeKind,
    /// Model-predicted modeled milliseconds for this plan.
    pub predicted_ms: f64,
    /// Model-predicted color count.
    pub predicted_colors: f64,
}

impl Plan {
    /// Writes the plan into a request's options — after this, the
    /// options describe a concrete job whose fingerprint keys the cache.
    pub fn apply(&self, opts: &mut ColorOptions) {
        opts.backend = self.backend;
        opts.num_shards = self.num_shards;
        opts.exchange = self.exchange;
    }

    /// The concrete [`JobSpec`] this plan resolves to, given the
    /// request's remaining (non-planned) options.
    pub fn spec(&self, opts: &ColorOptions) -> JobSpec {
        let mut opts = opts.clone();
        self.apply(&mut opts);
        JobSpec {
            scheme: self.scheme,
            opts,
        }
    }
}

/// One candidate's score: the model's predictions for a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemePrediction {
    /// The candidate scheme.
    pub scheme: Scheme,
    /// Predicted modeled milliseconds at one shard.
    pub predicted_ms: f64,
    /// Predicted color count.
    pub predicted_colors: f64,
}

/// The feature vector both predictors are linear in (log space): a bias,
/// `ln(1+x)` transforms of the profile's size and shape columns, a
/// *signed* `ln(1+|x|)` of skew (negative skew — grid-like, near-regular
/// degree lists — is a real signal, not noise), and the square of the
/// edge-count feature, which models the curvature of `ln(overhead +
/// work·m)` across scales. Non-finite inputs clamp to zero and every
/// entry is capped at [`model::FEATURE_CAP`] in magnitude, so the vector
/// is always finite.
pub fn features(p: &GraphProfile) -> [f64; NUM_FEATURES] {
    let n = p.num_vertices as f64 / model::SIZE_SCALE;
    let m = p.num_edges as f64 / model::SIZE_SCALE;
    let ln_m = feat(m);
    [
        1.0,
        feat(n),
        ln_m,
        feat(p.avg_degree),
        feat(p.degree_cv()),
        feat(p.max_ratio()),
        feat_signed(p.skew),
        ln_m * ln_m,
    ]
}

/// `ln(1+x)` of a sanitized input: non-finite and negative values are
/// treated as zero, the output is capped.
fn feat(x: f64) -> f64 {
    let x = if x.is_finite() && x > 0.0 { x } else { 0.0 };
    x.ln_1p().min(model::FEATURE_CAP)
}

/// Sign-preserving `ln(1+|x|)` for columns where negative values carry
/// information (skew). Non-finite inputs are treated as zero.
fn feat_signed(x: f64) -> f64 {
    if !x.is_finite() {
        return 0.0;
    }
    (x.abs().ln_1p().min(model::FEATURE_CAP)).copysign(x)
}

fn dot(w: &[f64; NUM_FEATURES], f: &[f64; NUM_FEATURES]) -> f64 {
    w.iter().zip(f.iter()).map(|(a, b)| a * b).sum()
}

/// Saturating `exp` of a log-space prediction: clamped so the result is
/// always finite and positive.
fn predict(w: &[f64; NUM_FEATURES], f: &[f64; NUM_FEATURES]) -> f64 {
    let z = dot(w, f);
    let z = if z.is_finite() { z } else { 0.0 };
    z.clamp(-model::EXP_CAP, model::EXP_CAP).exp()
}

impl SchemeModel {
    /// This row's predictions for a feature vector.
    pub fn predict(&self, f: &[f64; NUM_FEATURES]) -> SchemePrediction {
        SchemePrediction {
            scheme: self.scheme,
            predicted_ms: predict(&self.time_w, f),
            predicted_colors: predict(&self.color_w, f).max(1.0),
        }
    }
}

/// The planner: a checked-in decision table plus the (literal-free)
/// selection logic over it.
#[derive(Debug, Clone)]
pub struct Planner {
    models: &'static [SchemeModel],
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// A planner over the checked-in [`model::MODELS`] table.
    pub fn new() -> Self {
        Self {
            models: &model::MODELS,
        }
    }

    /// A planner over a custom (static) decision table — for tests and
    /// for comparing freshly calibrated tables against the checked-in
    /// one.
    pub fn with_models(models: &'static [SchemeModel]) -> Self {
        Self { models }
    }

    /// The schemes this planner can choose from, in table order.
    pub fn candidates(&self) -> Vec<Scheme> {
        self.models.iter().map(|m| m.scheme).collect()
    }

    /// Every candidate's predictions for a profile — the raw decision
    /// table the bench experiments record.
    pub fn score(&self, profile: &GraphProfile) -> Vec<SchemePrediction> {
        let f = features(profile);
        self.models.iter().map(|m| m.predict(&f)).collect()
    }

    /// Resolves a profile + SLO + resource envelope to a concrete plan.
    ///
    /// Total over arbitrary profiles: always returns a scheme from the
    /// candidate table ([`model::FALLBACK_SCHEME`] if the table is
    /// empty), a shard count in `1..=max_shards`, and never panics.
    pub fn plan(&self, profile: &GraphProfile, slo: Slo, res: &Resources) -> Plan {
        let preds = self.score(profile);
        let chosen = choose(&preds, slo).unwrap_or(SchemePrediction {
            scheme: model::FALLBACK_SCHEME,
            predicted_ms: 0.0,
            predicted_colors: 1.0,
        });
        let backend = choose_backend(res);
        let (num_shards, predicted_ms) =
            choose_shards(chosen.scheme, backend, profile, res, chosen.predicted_ms);
        Plan {
            scheme: chosen.scheme,
            backend,
            num_shards,
            exchange: model::PLAN_EXCHANGE,
            predicted_ms,
            predicted_colors: chosen.predicted_colors,
        }
    }
}

/// Picks the winning candidate for an SLO. Ties break toward table
/// order, which lists the paper's schemes in registry order.
fn choose(preds: &[SchemePrediction], slo: Slo) -> Option<SchemePrediction> {
    match slo {
        Slo::FastestWall => preds
            .iter()
            .copied()
            .min_by(|a, b| cmp_f64(a.predicted_ms, b.predicted_ms)),
        Slo::FewestColors => preds.iter().copied().min_by(|a, b| {
            cmp_f64(a.predicted_colors, b.predicted_colors)
                .then(cmp_f64(a.predicted_ms, b.predicted_ms))
        }),
        Slo::Balanced { color_slack } => {
            let slack = if color_slack.is_finite() && color_slack > 0.0 {
                color_slack
            } else {
                0.0
            };
            let best_colors = preds
                .iter()
                .copied()
                .min_by(|a, b| cmp_f64(a.predicted_colors, b.predicted_colors))?
                .predicted_colors;
            let band = best_colors * (1.0 + slack);
            preds
                .iter()
                .copied()
                .filter(|p| p.predicted_colors <= band)
                .min_by(|a, b| cmp_f64(a.predicted_ms, b.predicted_ms))
        }
    }
}

/// Total order on prediction values: non-finite sorts last, so a
/// saturated or degenerate prediction can never win a comparison against
/// a real one.
fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        b.is_finite()
            .cmp(&a.is_finite())
            .then(std::cmp::Ordering::Equal)
    })
}

/// First allowed backend in preference order; the library default if the
/// envelope is empty.
fn choose_backend(res: &Resources) -> BackendKind {
    model::BACKEND_PREFERENCE
        .into_iter()
        .find(|b| res.backends.contains(b))
        .unwrap_or_default()
}

/// Shard-count decision: spread only when the budget allows it, the
/// graph is large enough, and the PR 6 measurements say this
/// scheme/backend pair actually gains from P > 1. Returns the shard
/// count and the gain-adjusted time prediction.
fn choose_shards(
    scheme: Scheme,
    backend: BackendKind,
    profile: &GraphProfile,
    res: &Resources,
    predicted_ms: f64,
) -> (usize, f64) {
    let budget = res.max_shards.clamp(1, model::MAX_USEFUL_SHARDS);
    let gain = model::SHARD_GAINS
        .iter()
        .find(|g| g.scheme == scheme)
        .map(|g| match backend {
            BackendKind::Native => g.native,
            BackendKind::Simt | BackendKind::Sanitize => g.simt,
        })
        .unwrap_or(0.0);
    if budget > 1 && profile.num_edges >= model::SHARD_MIN_EDGES && gain > 1.0 {
        (budget, predicted_ms / gain)
    } else {
        (1, predicted_ms)
    }
}

/// An adaptive [`Colorer`]: profiles the graph, plans under its SLO and
/// the resource envelope implied by the run's [`ColorOptions`], then
/// runs the resolved scheme. This is how harnesses written against the
/// `Colorer` registry get `scheme: "auto"` without knowing the planner.
#[derive(Debug, Clone)]
pub struct AutoColorer {
    slo: Slo,
    planner: Planner,
}

impl AutoColorer {
    /// An auto colorer optimizing for `slo` with the checked-in table.
    pub fn new(slo: Slo) -> Self {
        Self {
            slo,
            planner: Planner::new(),
        }
    }

    /// The plan this colorer would run for `g` under `opts` — what the
    /// serve front end echoes back to clients.
    pub fn plan_for(&self, g: &Csr, opts: &ColorOptions) -> Plan {
        self.planner.plan(
            &GraphProfile::extract(g),
            self.slo,
            &Resources::from_options(opts),
        )
    }
}

impl Colorer for AutoColorer {
    fn label(&self) -> &str {
        "auto"
    }

    fn try_run(&self, g: &Csr, dev: &Device, opts: &ColorOptions) -> Result<Coloring, ColorError> {
        let plan = self.plan_for(g, opts);
        let mut opts = opts.clone();
        plan.apply(&mut opts);
        plan.scheme.try_color(g, dev, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::builder::from_undirected_edges;

    fn profile_of(edges: &[(u32, u32)], n: u32) -> GraphProfile {
        GraphProfile::extract(&from_undirected_edges(n as usize, edges.iter().copied()))
    }

    #[test]
    fn slo_names_round_trip() {
        assert_eq!("fastest-wall".parse::<Slo>(), Ok(Slo::FastestWall));
        assert_eq!("fastest".parse::<Slo>(), Ok(Slo::FastestWall));
        assert_eq!("fewest-colors".parse::<Slo>(), Ok(Slo::FewestColors));
        assert_eq!("colors".parse::<Slo>(), Ok(Slo::FewestColors));
        assert_eq!("balanced".parse::<Slo>(), Ok(Slo::balanced()));
        assert_eq!(Slo::default(), Slo::FastestWall);
        for &name in Slo::all_names() {
            assert_eq!(name.parse::<Slo>().unwrap().name(), name);
        }
        let err = "asap".parse::<Slo>().unwrap_err();
        assert!(err.contains("balanced"), "{err}");
    }

    #[test]
    fn features_are_always_finite() {
        let weird = GraphProfile {
            num_vertices: usize::MAX,
            num_edges: usize::MAX,
            density: f64::NAN,
            min_degree: 0,
            max_degree: usize::MAX,
            avg_degree: f64::INFINITY,
            variance: f64::NEG_INFINITY,
            skew: f64::NAN,
        };
        // The quadratic edge term is the square of a capped value, so the
        // magnitude bound is FEATURE_CAP²; signed skew can be negative.
        for v in features(&weird) {
            assert!(v.is_finite(), "feature {v}");
            assert!(v.abs() <= model::FEATURE_CAP * model::FEATURE_CAP);
        }
        // Negative skew survives the transform with its sign.
        let grid = GraphProfile {
            skew: -5.0,
            ..weird
        };
        let f = features(&grid);
        assert!(f[NUM_FEATURES - 2] < 0.0, "signed skew lost: {f:?}");
    }

    #[test]
    fn plan_is_valid_on_simple_graphs() {
        let p = profile_of(&[(0, 1), (1, 2), (2, 0)], 3);
        let planner = Planner::new();
        for slo in [Slo::FastestWall, Slo::FewestColors, Slo::balanced()] {
            let plan = planner.plan(&p, slo, &Resources::default());
            assert!(planner.candidates().contains(&plan.scheme), "{plan:?}");
            assert_eq!(plan.num_shards, 1);
            assert!(plan.predicted_ms.is_finite() && plan.predicted_ms >= 0.0);
            assert!(plan.predicted_colors >= 1.0);
        }
    }

    #[test]
    fn backend_choice_respects_the_envelope() {
        let p = profile_of(&[(0, 1)], 2);
        let planner = Planner::new();
        let native = planner.plan(
            &p,
            Slo::FastestWall,
            &Resources::single(BackendKind::Native, 1),
        );
        assert_eq!(native.backend, BackendKind::Native);
        let simt = planner.plan(&p, Slo::FastestWall, &Resources::default());
        assert_eq!(simt.backend, BackendKind::Simt);
        // Both allowed: preference order picks native.
        let both = planner.plan(
            &p,
            Slo::FastestWall,
            &Resources {
                backends: vec![BackendKind::Simt, BackendKind::Native],
                max_shards: 1,
            },
        );
        assert_eq!(both.backend, BackendKind::Native);
        // Empty envelope: library default, not a panic.
        let none = planner.plan(
            &p,
            Slo::FastestWall,
            &Resources {
                backends: vec![],
                max_shards: 0,
            },
        );
        assert_eq!(none.backend, BackendKind::default());
        assert_eq!(none.num_shards, 1);
    }

    #[test]
    fn sharding_needs_budget_size_and_measured_gain() {
        // A one-candidate table pins which scheme wins, so the shard
        // decision under test is independent of the fitted coefficients.
        // T-base gains from P=4 natively (2.07x) but loses on simt
        // (0.80x) in the PR 6 measurements.
        static TOPO_ONLY: [SchemeModel; 1] = [SchemeModel {
            scheme: Scheme::TopoBase,
            time_w: [0.0; NUM_FEATURES],
            color_w: [0.0; NUM_FEATURES],
        }];
        let planner = Planner::with_models(&TOPO_ONLY);

        // Small graph: never sharded, whatever the budget.
        let small = profile_of(&[(0, 1), (1, 2)], 3);
        let plan = planner.plan(
            &small,
            Slo::FastestWall,
            &Resources::single(BackendKind::Native, 4),
        );
        assert_eq!(plan.num_shards, 1, "tiny graphs stay on one device");

        // Large profile (coarse, IngestLimits regime), native backend,
        // big budget: shards, clamped to the measured useful maximum.
        let big = GraphProfile::coarse(2_000_000, 40_000_000);
        let plan = planner.plan(
            &big,
            Slo::FastestWall,
            &Resources::single(BackendKind::Native, 64),
        );
        assert_eq!(plan.scheme, Scheme::TopoBase);
        assert_eq!(plan.num_shards, model::MAX_USEFUL_SHARDS);
        assert_eq!(plan.exchange, ExchangeKind::Delta);

        // Same big graph on simt: T-base's measured simt gain is < 1,
        // so the plan stays on one device despite the budget.
        let plan = planner.plan(
            &big,
            Slo::FastestWall,
            &Resources::single(BackendKind::Simt, 4),
        );
        assert_eq!(plan.num_shards, 1, "{plan:?}");

        // Sequential has no shard-gain row at all: never sharded.
        static SEQ_ONLY: [SchemeModel; 1] = [SchemeModel {
            scheme: Scheme::Sequential,
            time_w: [0.0; NUM_FEATURES],
            color_w: [0.0; NUM_FEATURES],
        }];
        let plan = Planner::with_models(&SEQ_ONLY).plan(
            &big,
            Slo::FastestWall,
            &Resources::single(BackendKind::Native, 4),
        );
        assert_eq!(plan.num_shards, 1);
    }

    #[test]
    fn plan_spec_round_trips_into_job_options() {
        let g = from_undirected_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let planner = Planner::new();
        let plan = planner.plan(
            &GraphProfile::extract(&g),
            Slo::FastestWall,
            &Resources::default(),
        );
        let opts = ColorOptions::default();
        let spec = plan.spec(&opts);
        assert_eq!(spec.scheme, plan.scheme);
        assert_eq!(spec.opts.backend, plan.backend);
        assert_eq!(spec.opts.num_shards, plan.num_shards);
        assert_eq!(spec.opts.exchange, plan.exchange);
        // Un-planned knobs pass through untouched.
        assert_eq!(spec.opts.seed, opts.seed);
        assert_eq!(spec.opts.block_size, opts.block_size);
    }

    #[test]
    fn auto_colorer_runs_the_plan_it_reports() {
        let g = gcol_graph::gen::simple::erdos_renyi(200, 1000, 3);
        let dev = Device::tiny();
        let opts = ColorOptions::default();
        let auto = AutoColorer::new(Slo::FastestWall);
        assert_eq!(auto.label(), "auto");
        let plan = auto.plan_for(&g, &opts);
        let r = auto.run(&g, &dev, &opts);
        assert_eq!(r.scheme, plan.scheme);
        gcol_core::verify_coloring(&g, &r.colors).unwrap();
        // Direct execution of the resolved plan is bit-identical.
        let direct = plan.scheme.color(&g, &dev, &plan.spec(&opts).opts);
        assert_eq!(direct.colors, r.colors);
    }

    #[test]
    fn empty_model_table_falls_back() {
        static EMPTY: [SchemeModel; 0] = [];
        let planner = Planner::with_models(&EMPTY);
        let p = profile_of(&[(0, 1)], 2);
        let plan = planner.plan(&p, Slo::FewestColors, &Resources::default());
        assert_eq!(plan.scheme, model::FALLBACK_SCHEME);
        assert_eq!(plan.num_shards, 1);
    }
}

//! Robustness coverage for the planner: `Planner::plan` must be *total*
//! — any profile (arbitrary bit patterns in every float column,
//! degenerate graphs, header-only `IngestLimits`-sized estimates), any
//! SLO and any resource envelope yields a valid plan without panicking.

use gcol_core::{BackendKind, Scheme};
use gcol_graph::builder::from_undirected_edges;
use gcol_graph::io::IngestLimits;
use gcol_graph::GraphProfile;
use gcol_plan::{Plan, Planner, Resources, Slo};
use proptest::prelude::*;

fn slo_from(idx: u8, slack_bits: u64) -> Slo {
    match idx % 3 {
        0 => Slo::FastestWall,
        1 => Slo::FewestColors,
        _ => Slo::Balanced {
            // Arbitrary bit pattern: slack can be NaN, ±inf, negative…
            color_slack: f64::from_bits(slack_bits),
        },
    }
}

fn backends_from(mask: u8) -> Vec<BackendKind> {
    let all = [
        BackendKind::Simt,
        BackendKind::Native,
        BackendKind::Sanitize,
    ];
    all.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, b)| *b)
        .collect()
}

/// Every invariant a plan must satisfy, whatever went in.
fn assert_valid(plan: &Plan, planner: &Planner, res: &Resources) {
    let candidates = planner.candidates();
    assert!(
        candidates.contains(&plan.scheme) || plan.scheme == gcol_plan::model::FALLBACK_SCHEME,
        "scheme {:?} not a candidate",
        plan.scheme
    );
    assert!(
        Scheme::ALL.contains(&plan.scheme),
        "scheme {:?} not in Scheme::ALL",
        plan.scheme
    );
    assert!(plan.num_shards >= 1, "zero shards");
    assert!(
        plan.num_shards <= res.max_shards.max(1),
        "shards {} over budget {}",
        plan.num_shards,
        res.max_shards
    );
    if res.backends.is_empty() {
        assert_eq!(plan.backend, BackendKind::default());
    } else {
        assert!(res.backends.contains(&plan.backend));
    }
    assert!(plan.predicted_ms.is_finite(), "ms {}", plan.predicted_ms);
    assert!(plan.predicted_ms >= 0.0);
    assert!(plan.predicted_colors >= 1.0);
}

proptest! {
    /// Arbitrary bit patterns in every float column, arbitrary sizes,
    /// SLOs and envelopes: plan() is total and its output valid.
    #[test]
    fn plan_is_total_over_arbitrary_profiles(
        n in any::<u32>(),
        m in any::<u64>(),
        min_deg in any::<u32>(),
        max_deg in any::<u32>(),
        density_bits in any::<u64>(),
        avg_bits in any::<u64>(),
        var_bits in any::<u64>(),
        skew_bits in any::<u64>(),
        slo_idx in 0u8..3,
        slack_bits in any::<u64>(),
        backend_mask in 0u8..8,
        budget in 0usize..9,
    ) {
        let profile = GraphProfile {
            num_vertices: n as usize,
            num_edges: m as usize,
            density: f64::from_bits(density_bits),
            min_degree: min_deg as usize,
            max_degree: max_deg as usize,
            avg_degree: f64::from_bits(avg_bits),
            variance: f64::from_bits(var_bits),
            skew: f64::from_bits(skew_bits),
        };
        let res = Resources { backends: backends_from(backend_mask), max_shards: budget };
        let planner = Planner::new();
        let plan = planner.plan(&profile, slo_from(slo_idx, slack_bits), &res);
        assert_valid(&plan, &planner, &res);
    }
}

#[test]
fn plan_handles_degenerate_graphs() {
    let empty = gcol_graph::Csr::empty(0);
    let single = gcol_graph::Csr::empty(1);
    let star = from_undirected_edges(16, (1u32..16).map(|v| (0, v)));
    let clique = from_undirected_edges(6, (0u32..6).flat_map(|u| (u + 1..6).map(move |v| (u, v))));

    let planner = Planner::new();
    for (name, g) in [
        ("empty", &empty),
        ("single-vertex", &single),
        ("star", &star),
        ("clique", &clique),
    ] {
        let profile = GraphProfile::extract(g);
        for slo in [Slo::FastestWall, Slo::FewestColors, Slo::balanced()] {
            for res in [
                Resources::default(),
                Resources::single(BackendKind::Native, 4),
                Resources {
                    backends: vec![],
                    max_shards: 0,
                },
            ] {
                let plan = planner.plan(&profile, slo, &res);
                assert_valid(&plan, &planner, &res);
                // Degenerate graphs are all far below the shard floor.
                assert_eq!(plan.num_shards, 1, "{name} sharded under {slo}");
            }
        }
    }
}

/// When ingest refuses to materialize a graph (an `IngestLimits`-sized
/// input), the planner still plans from the header-only coarse profile:
/// the limits themselves bound what the profile can claim.
#[test]
fn plan_falls_back_to_coarse_profile_at_ingest_limits() {
    let limits = IngestLimits {
        max_vertices: Some(u32::MAX as usize),
        max_edges: Some(4_000_000_000),
    };
    // A declared size right at (and beyond) the admission bound — the
    // parser would reject the body, so only the header numbers exist.
    for (n, m) in [
        (limits.max_vertices.unwrap(), limits.max_edges.unwrap()),
        (usize::MAX, usize::MAX),
        (0, 0),
    ] {
        let profile = GraphProfile::coarse(n, m);
        assert!(profile.avg_degree.is_finite());
        assert!(profile.density.is_finite());
        let planner = Planner::new();
        for slo in [Slo::FastestWall, Slo::FewestColors, Slo::balanced()] {
            let res = Resources::single(BackendKind::Native, 4);
            let plan = planner.plan(&profile, slo, &res);
            assert_valid(&plan, &planner, &res);
        }
    }
}

//! Criterion benchmarks for the prefix-sum substrate: the primitive whose
//! cost the paper's "Atomic Operation Reduction" optimization (§III-C,
//! Fig. 5) trades against per-element atomics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcol_scan::{blelloch_exclusive_scan, compact_flagged, exclusive_scan, par_exclusive_scan};
use std::hint::black_box;

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclusive-scan");
    for size in [1usize << 12, 1 << 16, 1 << 20] {
        let xs: Vec<u32> = (0..size as u32).map(|i| i % 7).collect();
        group.bench_with_input(BenchmarkId::new("sequential", size), &xs, |b, xs| {
            b.iter(|| exclusive_scan(black_box(xs)).1)
        });
        group.bench_with_input(BenchmarkId::new("blelloch", size), &xs, |b, xs| {
            b.iter(|| {
                let mut v = xs.clone();
                blelloch_exclusive_scan(black_box(&mut v))
            })
        });
        group.bench_with_input(BenchmarkId::new("rayon", size), &xs, |b, xs| {
            b.iter(|| par_exclusive_scan(black_box(xs)).1)
        });
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let n = 1usize << 18;
    let xs: Vec<u32> = (0..n as u32).collect();
    let flags: Vec<bool> = xs.iter().map(|&x| x % 5 == 0).collect();
    c.bench_function("compact-flagged-2^18", |b| {
        b.iter(|| compact_flagged(black_box(&xs), black_box(&flags)).len())
    });
}

criterion_group!(benches, bench_scans, bench_compaction);
criterion_main!(benches);

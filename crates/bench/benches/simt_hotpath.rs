//! Criterion benches for the SIMT executor hot path: the
//! trace-then-replay loop (`run_block` → `account_warp` → coalescing →
//! cache probes) that dominates every simulated kernel launch.
//!
//! These are the regression guards for the flat-`WarpTrace` /
//! single-pass-accounting overhaul: each bench pins one shape of replay
//! work so a slowdown in that path shows up in `cargo bench -p
//! gcol-bench --bench simt_hotpath` before it shows up in full figure
//! runs. Headline before/after wall-clock numbers for the overhaul live
//! in `BENCH_simt.json` at the repo root (measured with the
//! `hotpath` bin, which these benches mirror at a criterion-friendly
//! scale).

use criterion::{criterion_group, criterion_main, Criterion};
use gcol_bench::suite::build_graph;
use gcol_core::{ColorOptions, Scheme};
use gcol_simt::{Device, ExecMode};
use std::hint::black_box;

fn opts() -> ColorOptions {
    ColorOptions {
        exec_mode: ExecMode::Deterministic,
        ..ColorOptions::default()
    }
}

/// The four paper schemes the `hotpath` bin drives, at a scale criterion
/// can sample in seconds. Topology-driven schemes stress plain-`Ld`
/// (L2-only) replay; `*Ldg` variants add the read-only-cache probe path;
/// data-driven schemes add worklist atomics.
fn bench_coloring_replay(c: &mut Criterion) {
    let g = build_graph("rmat-er", 12);
    let dev = Device::k20c();
    let mut group = c.benchmark_group("simt-hotpath/rmat12");
    group.sample_size(10);
    for scheme in [
        Scheme::TopoBase,
        Scheme::TopoLdg,
        Scheme::DataBase,
        Scheme::DataLdg,
    ] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| scheme.color(black_box(&g), &dev, &opts()).num_colors)
        });
    }
    group.finish();
}

/// Replay with heavy atomic serialization (csrcolor's many small
/// kernels): exercises the divergent-slot fallback and
/// `atomic_access` far more than the topology schemes do.
fn bench_atomic_replay(c: &mut Criterion) {
    let g = build_graph("rmat-er", 12);
    let dev = Device::k20c();
    let mut group = c.benchmark_group("simt-hotpath/atomics");
    group.sample_size(10);
    group.bench_function("csrcolor", |b| {
        b.iter(|| {
            Scheme::CsrColor
                .color(black_box(&g), &dev, &opts())
                .num_colors
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coloring_replay, bench_atomic_replay);
criterion_main!(benches);

//! Criterion benchmarks for the host-side algorithms: the sequential
//! greedy baseline (Algorithm 1) under different orderings, and the CPU
//! parallel GM (Algorithm 2) / JP (Algorithm 3) implementations. These are
//! real wall-clock measurements (not simulator time) — the native-Rust
//! counterpart of the paper's Xeon E5-2670 baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcol_core::{gm, jp, seq};
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::ordering::Ordering;
use std::hint::black_box;

fn bench_sequential_orderings(c: &mut Criterion) {
    let g = gen::rmat(RmatParams::erdos_renyi(14, 16), 1);
    let mut group = c.benchmark_group("seq-greedy");
    group.sample_size(20);
    for (name, ord) in [
        ("natural", Ordering::Natural),
        ("largest-degree-first", Ordering::LargestDegreeFirst),
        ("smallest-degree-last", Ordering::SmallestDegreeLast),
        ("random", Ordering::Random(7)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ord, |b, &ord| {
            b.iter(|| seq::greedy_seq(black_box(&g), ord).num_colors)
        });
    }
    group.finish();
}

fn bench_parallel_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu-parallel");
    group.sample_size(15);
    for scale in [12u32, 14] {
        let g = gen::rmat(RmatParams::erdos_renyi(scale, 16), 2);
        group.bench_with_input(BenchmarkId::new("seq", scale), &g, |b, g| {
            b.iter(|| seq::greedy_seq(black_box(g), Ordering::Natural).num_colors)
        });
        group.bench_with_input(BenchmarkId::new("gm", scale), &g, |b, g| {
            b.iter(|| gm::gm_parallel(black_box(g), 10_000).num_colors)
        });
        group.bench_with_input(BenchmarkId::new("jp", scale), &g, |b, g| {
            b.iter(|| jp::jp_parallel(black_box(g), 3, 10_000).num_colors)
        });
    }
    group.finish();
}

fn bench_graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("rmat-er-2^14", |b| {
        b.iter(|| gen::rmat(RmatParams::erdos_renyi(14, 16), black_box(3)))
    });
    group.bench_function("rmat-skewed-2^14", |b| {
        b.iter(|| gen::rmat(RmatParams::skewed(14, 16), black_box(3)))
    });
    group.bench_function("grid3d-26^3", |b| {
        b.iter(|| gen::grid3d(black_box(26), 26, 26))
    });
    group.bench_function("mesh2d-128x128", |b| {
        b.iter(|| gen::mesh2d(black_box(128), 128, 0.1, 5))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_orderings,
    bench_parallel_cpu,
    bench_graph_generation
);
criterion_main!(benches);

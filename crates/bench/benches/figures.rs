//! Criterion regression benches for the paper's figures, one per
//! table/figure: each measures the wall-clock of regenerating a
//! small-scale version of that experiment, so performance regressions in
//! the simulator or the algorithms show up in `cargo bench`. The
//! full-scale figure data comes from the `gcol-bench` CLI (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use gcol_bench::experiments::{self, ExpConfig};
use gcol_bench::suite::build_graph;
use gcol_core::{ColorOptions, Scheme};
use gcol_simt::{Device, ExecMode};
use std::hint::black_box;

fn cfg() -> ExpConfig {
    ExpConfig {
        scale: 11,
        exec_mode: ExecMode::Deterministic,
        ..ExpConfig::default()
    }
}

fn opts() -> ColorOptions {
    ColorOptions {
        exec_mode: ExecMode::Deterministic,
        ..ColorOptions::default()
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1-suite-build+stats", |b| {
        b.iter(|| {
            gcol_bench::suite::build_suite(black_box(11))
                .iter()
                .map(|e| e.stats().num_edges)
                .sum::<usize>()
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    let g = build_graph("rmat-er", 11);
    let dev = Device::k20c();
    let mut group = c.benchmark_group("fig1-motivation");
    group.sample_size(10);
    group.bench_function("3-step-gm", |b| {
        b.iter(|| {
            Scheme::ThreeStepGm
                .color(black_box(&g), &dev, &opts())
                .num_colors
        })
    });
    group.bench_function("csrcolor", |b| {
        b.iter(|| {
            Scheme::CsrColor
                .color(black_box(&g), &dev, &opts())
                .num_colors
        })
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let g = build_graph("thermal2", 11);
    let dev = Device::k20c();
    c.bench_function("fig3-topo-base-profile", |b| {
        b.iter(|| {
            let r = Scheme::TopoBase.color(black_box(&g), &dev, &opts());
            r.profile.aggregate_kernel_metrics().unwrap().0
        })
    });
}

fn bench_fig67(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6+7-schemes");
    group.sample_size(10);
    let g = build_graph("rmat-er", 11);
    let dev = Device::k20c();
    for scheme in Scheme::paper_seven() {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| scheme.color(black_box(&g), &dev, &opts()).num_colors)
        });
    }
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let g = build_graph("atmosmodd", 11);
    let dev = Device::k20c();
    let mut group = c.benchmark_group("fig8-block-sizes");
    group.sample_size(10);
    for block in [32u32, 128, 512] {
        group.bench_function(format!("{block}t"), |b| {
            let o = ColorOptions {
                block_size: block,
                ..opts()
            };
            b.iter(|| Scheme::DataLdg.color(black_box(&g), &dev, &o).num_colors)
        });
    }
    group.finish();
}

fn bench_suite_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    group.sample_size(10);
    group.bench_function("fig7-two-schemes-scale11", |b| {
        b.iter(|| {
            experiments::run_suite_schemes(&cfg(), &[Scheme::Sequential, Scheme::DataLdg]).len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1,
    bench_fig3,
    bench_fig67,
    bench_fig8,
    bench_suite_runner
);
criterion_main!(benches);

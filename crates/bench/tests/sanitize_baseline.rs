//! Expected-findings baseline for the launch sanitizer.
//!
//! `data/sanitize_baseline.json` pins the sanitizer's steady state at
//! scale 8 — every (scheme, graph, shards) run and its full report,
//! which today is exclusively the paper's documented benign `st_warp`
//! speculation race. This test re-runs the audit and diffs against the
//! baseline, so CI catches both regressions (a new finding class — a
//! real race, an `ldg` of a written buffer, an OOB) *and* silent
//! coverage loss (a kernel that stops being audited, a race that
//! vanishes because speculation was accidentally serialized).
//!
//! Regenerate after an intentional kernel change with:
//!
//! ```text
//! cargo run --release -p gcol-bench -- sanitize --scale 8 \
//!     --sanitize-json crates/bench/tests/data/sanitize_baseline.json
//! ```

use gcol_bench::experiments::{sanitize, ExpConfig};

const BASELINE: &str = include_str!("data/sanitize_baseline.json");

fn scale8() -> ExpConfig {
    ExpConfig {
        scale: 8,
        ..ExpConfig::default()
    }
}

#[test]
fn audit_matches_checked_in_baseline() {
    let entries = sanitize::audit(&scale8());
    let actual = serde_json::to_string_pretty(&entries).expect("serialize audit");
    assert_eq!(
        actual.trim(),
        BASELINE.trim(),
        "sanitizer findings drifted from tests/data/sanitize_baseline.json; \
         if the kernel change is intentional, regenerate with \
         `cargo run --release -p gcol-bench -- sanitize --scale 8 \
         --sanitize-json crates/bench/tests/data/sanitize_baseline.json`"
    );
}

/// The baseline may only ever contain the documented benign race: a
/// harmful finding can never be baselined away by regenerating the
/// file. Checked against both the live audit (typed) and the checked-in
/// text (so a hand-edited baseline fails too).
#[test]
fn baseline_contains_only_the_documented_benign_race() {
    let entries = sanitize::audit(&scale8());
    let mut findings = 0;
    for e in &entries {
        for f in &e.report.findings {
            assert!(
                f.kind.is_benign(),
                "{}/{} P={}: harmful finding in the steady state: {f}",
                e.scheme,
                e.graph,
                e.shards
            );
            findings += 1;
        }
    }
    assert!(findings > 0, "the speculation race must be observed at all");

    for (i, chunk) in BASELINE.split("\"kind\": ").enumerate() {
        if i > 0 {
            assert!(
                chunk.starts_with("\"WarpSpecRace\""),
                "non-benign kind in the checked-in baseline near: {}",
                &chunk[..chunk.len().min(40)]
            );
        }
    }
}

/// The diff-stable projection used for quick triage: every run reports
/// the race on a color buffer — `color` in the single-device drivers,
/// `shard-color` in the sharded cross-resolve — and nothing else.
#[test]
fn finding_keys_name_only_color_buffers() {
    let entries = sanitize::audit(&scale8());
    for e in &entries {
        for key in e.finding_keys() {
            assert!(
                key.starts_with("WarpSpecRace/")
                    && (key.ends_with("/color") || key.ends_with("/shard-color")),
                "{}/{} P={}: unexpected finding key {key}",
                e.scheme,
                e.graph,
                e.shards
            );
        }
    }
}

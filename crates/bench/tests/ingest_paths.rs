//! Acceptance cross-check of the ingest pipeline: one checked-in
//! fixture must produce the *same graph* and the *same coloring*
//! whichever front end carried it —
//!
//! 1. the direct library reader (`read_matrix_market` + `try_color`),
//! 2. the bench CLI's `--graph` path (`suite::load_entry`, the exact
//!    loader `ExpConfig::suite` calls),
//! 3. the serve protocol's `load` verb followed by coloring the
//!    session graph.
//!
//! Equality is pinned at both levels: identical content fingerprints
//! (the ingest relabeling is stable) and identical color assignments
//! (the coloring path downstream of ingest is oblivious to the route).

use gcol_core::{BackendKind, ColorOptions, Scheme};
use gcol_graph::io::read_matrix_market;
use gcol_serve::json::{self, Json};
use gcol_serve::{serve_lines, Service, ServiceConfig};
use gcol_simt::Device;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The shared corpus fixture: the paper's Fig. 2 graph in MatrixMarket
/// form, checked in under the graph crate's parser-corpus tests.
fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../graph/tests/corpus/valid/fig2.mtx")
}

#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Escapes file text for embedding in a JSON string field.
fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[test]
fn one_fixture_colors_identically_through_every_front_end() {
    let path = fixture();
    let text = std::fs::read_to_string(&path).unwrap();

    // Route 1: direct reader + direct coloring.
    let direct_graph = read_matrix_market(text.as_bytes()).unwrap();
    let opts = ColorOptions {
        backend: BackendKind::Native,
        seed: 7,
        ..ColorOptions::default()
    };
    let direct = Scheme::DataBase
        .try_color(&direct_graph, &Device::k20c(), &opts)
        .unwrap();

    // Route 2: the bench CLI's `--graph` loader.
    let entry = gcol_bench::suite::load_entry(&path).unwrap();
    assert_eq!(
        entry.graph.content_fingerprint(),
        direct_graph.content_fingerprint(),
        "--graph ingest must relabel to the same CSR as the direct reader"
    );
    assert_eq!(entry.name, "fig2");
    let bench = Scheme::DataBase
        .try_color(&entry.graph, &Device::k20c(), &opts)
        .unwrap();
    assert_eq!(bench.colors, direct.colors);

    // Route 3: serve `load` + coloring the session graph.
    let input = format!(
        concat!(
            r#"{{"id":1,"op":"load","format":"mtx","data":"{data}"}}"#,
            "\n",
            r#"{{"id":2,"op":"color","graph":"session","scheme":"D-base","backend":"native","seed":7,"assignment":true}}"#,
            "\n",
        ),
        data = json_escape(&text),
    );
    let svc = Service::start(ServiceConfig::default());
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let resolve = |name: &str, _: u32, _: u64| Err(format!("unknown graph {name:?}"));
    serve_lines(svc, input.as_bytes(), buf.clone(), &resolve).unwrap();
    let bytes = buf.0.lock().unwrap().clone();
    let lines: Vec<Json> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).unwrap())
        .collect();
    let by_id = |id: u64| {
        lines
            .iter()
            .find(|l| l.get("id").and_then(Json::as_u64) == Some(id))
            .unwrap()
    };

    let loaded = by_id(1);
    assert_eq!(
        loaded.get("ok").and_then(Json::as_bool),
        Some(true),
        "{loaded:?}"
    );
    assert_eq!(
        loaded.get("graph_fingerprint").and_then(Json::as_str),
        Some(format!("{:016x}", direct_graph.content_fingerprint()).as_str()),
        "serve load must ingest to the same content fingerprint"
    );

    let colored = by_id(2);
    assert_eq!(
        colored.get("ok").and_then(Json::as_bool),
        Some(true),
        "{colored:?}"
    );
    assert_eq!(
        colored.get("colors").and_then(Json::as_u64),
        Some(direct.num_colors as u64)
    );
    let served: Vec<u32> = colored
        .get("assignment")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|c| c.as_u64().unwrap() as u32)
        .collect();
    assert_eq!(
        served, direct.colors,
        "the served coloring must be bit-identical to the direct run"
    );
}

//! Incremental recoloring A/B: after an edge-edit batch, repair the old
//! coloring through [`gcol_core::recolor_delta`] versus rerunning the
//! scheme from scratch on the edited graph.
//!
//! The sweep applies mixed batches (half deletes of existing edges, half
//! inserts of fresh non-edges) sized at 0.1%, 1% and 5% of the graph's
//! undirected edge count, for every GPU scheme. Both paths are timed in
//! wall clock (min over 3 runs on the native backend — the statistic the
//! repo's other wall benchmarks use on a noisy shared host, and the one
//! that excludes first-call arena/pool warm-up); on the simt backend the
//! modeled time and the summed kernel instruction counts are reported
//! too, making the asymptotic claim checkable: the repair engine
//! launches over the dirty set, so its kernel work scales with the
//! batch, not the graph.
//!
//! Every repaired coloring is verified proper and bit-identical to the
//! baseline outside the touched set. `--smoke` runs the CI gate on the
//! simt backend: at the 1% batch, no scheme's delta repair may issue
//! more kernel instructions than its from-scratch rerun.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, speedup, Table};
use gcol_core::{recolor_delta, Coloring, Scheme};
use gcol_graph::edit::EdgeEdit;
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::rng::splitmix64;
use gcol_graph::{Csr, VertexId};
use gcol_simt::{Device, Phase};
use serde::Serialize;
use std::time::Instant;

/// Edit-batch sizes as permille of the undirected edge count.
pub const BATCH_PERMILLE: [u32; 3] = [1, 10, 50];

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    batch_permille: u32,
    edits: usize,
    touched: usize,
    scratch_wall_ms: f64,
    delta_wall_ms: f64,
    wall_speedup: f64,
    /// Modeled timeline totals (simt backend; wall-clock-dominated and
    /// near-identical on native, which models no device).
    scratch_modeled_ms: f64,
    delta_modeled_ms: f64,
    /// Warp instructions summed over all kernel launches (0 on native:
    /// no modeled kernels).
    scratch_kernel_instructions: u64,
    delta_kernel_instructions: u64,
    scratch_colors: usize,
    delta_colors: usize,
}

/// Warp instructions summed over the run's kernel phases.
fn kernel_instructions(r: &Coloring) -> u64 {
    r.profile
        .phases
        .iter()
        .filter_map(|p| match p {
            Phase::Kernel(k) => Some(k.instructions),
            _ => None,
        })
        .sum()
}

/// A deterministic mixed batch of `target` edits: the first half deletes
/// existing undirected edges (evenly strided through the edge list), the
/// second half inserts fresh non-edges drawn from a seeded stream.
fn edit_batch(g: &Csr, target: usize, seed: u64) -> Vec<EdgeEdit> {
    let undirected = g.num_edges() / 2;
    let deletes = (target / 2).min(undirected);
    let stride = (undirected / deletes.max(1)).max(1);
    let mut edits: Vec<EdgeEdit> = g
        .edges()
        .filter(|(u, v)| u < v)
        .step_by(stride)
        .take(deletes)
        .map(|(u, v)| EdgeEdit::Delete(u, v))
        .collect();
    let n = g.num_vertices() as u64;
    let mut s = seed;
    let mut fresh: std::collections::HashSet<(VertexId, VertexId)> =
        std::collections::HashSet::new();
    while edits.len() < target {
        let u = (splitmix64(&mut s) % n) as VertexId;
        let v = (splitmix64(&mut s) % n) as VertexId;
        let key = (u.min(v), u.max(v));
        if u != v && !g.has_edge_sorted(u, v) && fresh.insert(key) {
            edits.push(EdgeEdit::Insert(u, v));
        }
    }
    edits
}

/// Runs the A/B: every GPU scheme, every batch size; delta repairs are
/// verified proper and clean outside the touched set.
pub fn run(cfg: &ExpConfig) -> String {
    let mut cfg = cfg.clone();
    if cfg.smoke {
        // The gate compares modeled kernel work, so it needs the
        // instruction-counting backend.
        cfg.backend = gcol_core::BackendKind::Simt;
    }
    let dev = Device::k20c();
    // Wall repeats: min-of-3 on native (cheap full runs, noisy host); the
    // simt backend's modeled columns are deterministic, so one run does.
    let repeats = if cfg.backend == gcol_core::BackendKind::Native {
        3
    } else {
        1
    };
    let g = match cfg.graph_override() {
        Some(e) => e.graph,
        None => gen::rmat(RmatParams::erdos_renyi(cfg.scale, 20), 0xE5),
    };
    let undirected = g.num_edges() / 2;
    let opts = cfg.color_options();
    let mut table = Table::new(vec![
        "scheme".to_string(),
        "batch".to_string(),
        "edits".to_string(),
        "touched".to_string(),
        format!("scratch ms ({})", cfg.backend),
        format!("delta ms ({})", cfg.backend),
        "speedup".to_string(),
        "scratch kinstr".to_string(),
        "delta kinstr".to_string(),
        "colors s/d".to_string(),
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for scheme in Scheme::GPU {
        let base = match scheme.try_color(&g, &dev, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("warning: {scheme} baseline skipped: {e}");
                continue;
            }
        };
        for &permille in &BATCH_PERMILLE {
            let target = ((undirected as u64 * permille as u64) / 1000).max(2) as usize;
            let batch = edit_batch(&g, target, 0xD1A_0000 | permille as u64);
            let (edited, touched) = g.with_edits(&batch).expect("generated batch is valid");

            let mut scratch = None;
            let mut scratch_wall_ms = f64::INFINITY;
            let mut delta = None;
            let mut delta_wall_ms = f64::INFINITY;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let r = scheme
                    .try_color(&edited, &dev, &opts)
                    .unwrap_or_else(|e| panic!("{scheme} scratch at {permille}permille: {e}"));
                scratch_wall_ms = scratch_wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                scratch = Some(r);

                let t0 = Instant::now();
                let r = recolor_delta(&edited, &base, &touched, &dev, &opts)
                    .unwrap_or_else(|e| panic!("{scheme} delta at {permille}permille: {e}"));
                delta_wall_ms = delta_wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                delta = Some(r);
            }
            let (scratch, delta) = (scratch.unwrap(), delta.unwrap());

            gcol_core::verify_coloring(&edited, &scratch.colors)
                .unwrap_or_else(|e| panic!("{scheme} scratch improper: {e}"));
            gcol_core::verify_coloring(&edited, &delta.colors)
                .unwrap_or_else(|e| panic!("{scheme} delta improper: {e}"));
            let touched_set: std::collections::HashSet<VertexId> =
                touched.iter().copied().collect();
            for v in 0..edited.num_vertices() {
                assert!(
                    touched_set.contains(&(v as VertexId)) || delta.colors[v] == base.colors[v],
                    "{scheme}: delta recolored untouched vertex {v}"
                );
            }

            let row = Row {
                scheme: scheme.name(),
                batch_permille: permille,
                edits: batch.len(),
                touched: touched.len(),
                scratch_wall_ms,
                delta_wall_ms,
                wall_speedup: scratch_wall_ms / delta_wall_ms,
                scratch_modeled_ms: scratch.total_ms(),
                delta_modeled_ms: delta.total_ms(),
                scratch_kernel_instructions: kernel_instructions(&scratch),
                delta_kernel_instructions: kernel_instructions(&delta),
                scratch_colors: scratch.num_colors,
                delta_colors: delta.num_colors,
            };
            table.row(vec![
                row.scheme.to_string(),
                format!("{:.1}%", permille as f64 / 10.0),
                row.edits.to_string(),
                row.touched.to_string(),
                f(row.scratch_wall_ms, 2),
                f(row.delta_wall_ms, 2),
                speedup(row.wall_speedup),
                row.scratch_kernel_instructions.to_string(),
                row.delta_kernel_instructions.to_string(),
                format!("{}/{}", row.scratch_colors, row.delta_colors),
            ]);
            rows.push(row);
        }
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    let mut report = format!(
        "Incremental recoloring — rmat-er scale {} ({} vertices, {} undirected\n\
         edges) on the {} backend. Each batch is half deletes, half fresh\n\
         inserts; 'touched' is the dirty set the repair engine consumed. Every\n\
         delta coloring is verified proper and bit-identical to the baseline\n\
         outside the touched set. Expected shape: delta wall time and kernel\n\
         work scale with the batch, from-scratch with the graph, so the\n\
         speedup shrinks as the batch grows.\n\n{}",
        cfg.scale,
        g.num_vertices(),
        undirected,
        cfg.backend,
        table.render()
    );
    if cfg.smoke {
        report.push_str(&smoke_checks(&rows));
    }
    report
}

/// The CI gate: at the 1% batch, a delta repair never issues more kernel
/// instructions than the from-scratch rerun. Panics on violation.
fn smoke_checks(rows: &[Row]) -> String {
    let mut checked = 0usize;
    for r in rows.iter().filter(|r| r.batch_permille == 10) {
        assert!(
            r.delta_kernel_instructions <= r.scratch_kernel_instructions,
            "smoke: {} at 1%: delta kernel work ({} instr) exceeds scratch ({} instr)",
            r.scheme,
            r.delta_kernel_instructions,
            r.scratch_kernel_instructions
        );
        checked += 1;
    }
    assert!(checked > 0, "smoke: no 1%-batch rows to compare");
    format!("\nsmoke: OK — {checked} delta-vs-scratch kernel-work comparisons, 0 violations\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_core::BackendKind;

    #[test]
    fn incremental_report_covers_every_scheme_and_batch() {
        let cfg = ExpConfig {
            scale: 9,
            backend: BackendKind::Native,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for scheme in Scheme::GPU {
            assert!(out.contains(scheme.name()), "missing {scheme}");
        }
        for pct in ["0.1%", "1.0%", "5.0%"] {
            assert!(out.contains(pct), "missing batch column {pct}");
        }
    }

    #[test]
    fn smoke_gate_holds_at_small_scale() {
        let cfg = ExpConfig {
            scale: 9,
            smoke: true,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("smoke: OK"), "missing smoke summary:\n{out}");
    }

    #[test]
    fn edit_batches_hit_their_target_size() {
        let g = gen::rmat(RmatParams::erdos_renyi(8, 8), 1);
        let batch = edit_batch(&g, 40, 7);
        assert_eq!(batch.len(), 40);
        let deletes = batch
            .iter()
            .filter(|e| matches!(e, EdgeEdit::Delete(..)))
            .count();
        assert_eq!(deletes, 20);
        // The batch must be applicable as generated.
        g.with_edits(&batch).unwrap();
    }
}

//! Fig. 8: performance as a function of thread-block size
//! {32, 64, 128, 256, 512}. Expected shape: 32 threads starves the SMs of
//! warps (poor latency hiding); the peak sits at 128/256; beyond 256
//! resource pressure ("oversaturation") costs occupancy. The paper picks
//! 128 as the default.

use super::{geomean, ExpConfig};
use crate::report::{maybe_write_json, speedup, Table};

use gcol_core::{ColorOptions, Scheme};
use gcol_simt::Device;
use serde::Serialize;

/// Block sizes the paper sweeps.
pub const BLOCK_SIZES: [u32; 5] = [32, 64, 128, 256, 512];

#[derive(Serialize)]
struct Row {
    graph: String,
    block: u32,
    ms: f64,
    speedup: f64,
    occupancy_pct: f64,
}

/// Runs the Fig. 8 experiment: sweeps the block size for the D-ldg scheme.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let suite = cfg.suite();
    let mut header: Vec<String> = vec!["graph".into()];
    header.extend(BLOCK_SIZES.iter().map(|b| format!("{b}t")));
    let mut table = Table::new(header);
    let mut rows = Vec::new();
    let mut per_block: Vec<Vec<f64>> = vec![Vec::new(); BLOCK_SIZES.len()];
    for e in &suite {
        let seq_ms = Scheme::Sequential
            .color(&e.graph, &dev, &cfg.color_options())
            .total_ms();
        let mut cells = vec![e.name.to_string()];
        for (bi, &block) in BLOCK_SIZES.iter().enumerate() {
            let opts = ColorOptions {
                block_size: block,
                exec_mode: cfg.exec_mode,
                ..ColorOptions::default()
            };
            let r = Scheme::DataLdg.color(&e.graph, &dev, &opts);
            gcol_core::verify_coloring(&e.graph, &r.colors).unwrap();
            let sp = seq_ms / r.total_ms();
            cells.push(speedup(sp));
            per_block[bi].push(sp);
            let occ = r
                .profile
                .phases
                .iter()
                .filter_map(|p| match p {
                    gcol_simt::Phase::Kernel(k) => Some(k.occupancy.fraction),
                    _ => None,
                })
                .fold(0.0f64, f64::max);
            rows.push(Row {
                graph: e.name.to_string(),
                block,
                ms: r.total_ms(),
                speedup: sp,
                occupancy_pct: occ * 100.0,
            });
        }
        table.row(cells);
    }
    let mut mean = vec!["geomean".to_string()];
    mean.extend(
        per_block
            .iter()
            .map(|v| speedup(geomean(v.iter().copied()))),
    );
    table.row(mean);
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Fig. 8 — D-ldg speedup vs thread-block size.\n\
         Expected shape: poor at 32 (few resident warps), peak at 128/256,\n\
         degraded at 512 (register-pressure occupancy loss).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn sweep_runs_at_tiny_scale() {
        let cfg = ExpConfig {
            scale: 10,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for b in BLOCK_SIZES {
            assert!(out.contains(&format!("{b}t")), "missing column {b}");
        }
    }
}

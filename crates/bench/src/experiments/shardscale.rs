//! Multi-device scaling study: the sharded driver on P ∈ {1, 2, 4}
//! devices (plus `--shards P` if it names a different count), every GPU
//! scheme, on the paper's rmat-er workload — as a dense-vs-delta
//! frontier-encoding A/B.
//!
//! On the simt backend the times are the modeled critical path — phase-A
//! local coloring at max-over-devices plus the ghost-frontier exchange
//! rounds, where only the copy tail the receiver cannot hide behind its
//! own compute is charged — and the `frontier B` column is the total
//! d2d wire traffic, straight from the profile's `Transfer` phases. The
//! A/B shows what the delta encoding buys: round 1 is always dense (the
//! first diff marks every ghost dirty), so one-round schemes ship
//! identical bytes under either kind, while multi-round schemes shrink
//! their later frames to the conflict-loser set. `--exchange` pins one
//! encoding instead of sweeping both; `--smoke` checks the CI
//! invariants (delta never ships more bytes than dense; no one-round
//! scheme regresses below its dense modeled time).
//!
//! On the native backend the times are wall clock: the shards genuinely
//! run the same kernels over smaller subgraphs, there is no modeled
//! interconnect, and the frontier column reads 0.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, speedup, Table};
use gcol_core::{Coloring, ExchangeKind, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_simt::{Device, Phase};
use serde::Serialize;

/// The scaling sweep every run covers.
pub const BASE_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    shards: usize,
    /// `"dense"`, `"delta"`, or `"-"` for P = 1 (no exchange happens, so
    /// the encodings are indistinguishable and the row is shared).
    exchange: &'static str,
    num_colors: usize,
    iterations: usize,
    /// Ghost-frontier exchange rounds (d2d `Transfer` phases; 0 on the
    /// native backend, which models no interconnect).
    rounds: usize,
    /// Total d2d frontier wire bytes across all rounds.
    frontier_bytes: usize,
    ms: f64,
    speedup_vs_one: f64,
}

fn shard_counts(cfg: &ExpConfig) -> Vec<usize> {
    let mut counts = BASE_SHARD_COUNTS.to_vec();
    if cfg.shards > 1 && !counts.contains(&cfg.shards) {
        counts.push(cfg.shards);
        counts.sort_unstable();
    }
    counts
}

/// Sums the wire bytes of the ghost-frontier `Transfer` phases and
/// counts the exchange rounds they stand for.
fn frontier_traffic(r: &Coloring) -> (usize, usize) {
    r.profile
        .phases
        .iter()
        .filter_map(|p| match p {
            Phase::Transfer { label, bytes, .. } if label.contains("ghost frontier") => {
                Some(*bytes)
            }
            _ => None,
        })
        .fold((0, 0), |(bytes, rounds), b| (bytes + b, rounds + 1))
}

/// Runs the sweep: every GPU scheme at every shard count under each
/// selected encoding, colorings verified, times relative to the same
/// scheme's single-device run (shared by both encodings — P = 1 never
/// exchanges).
pub fn run(cfg: &ExpConfig) -> String {
    let mut cfg = cfg.clone();
    if cfg.smoke {
        // The smoke invariants compare the encodings' modeled traffic, so
        // they need both kinds and the modeled backend.
        cfg.exchange = None;
        cfg.backend = gcol_core::BackendKind::Simt;
    }
    let kinds: Vec<ExchangeKind> = match cfg.exchange {
        Some(k) => vec![k],
        None => ExchangeKind::ALL.to_vec(),
    };
    let dev = Device::k20c();
    let counts = shard_counts(&cfg);
    let g = match cfg.graph_override() {
        Some(e) => e.graph,
        None => gen::rmat(RmatParams::erdos_renyi(cfg.scale, 20), 0xE5),
    };
    let mut table = Table::new(vec![
        "scheme".to_string(),
        "P".to_string(),
        "exch".to_string(),
        "colors".to_string(),
        "iters".to_string(),
        "rounds".to_string(),
        "frontier B".to_string(),
        format!("ms ({})", cfg.backend),
        "speedup vs P=1".to_string(),
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for scheme in Scheme::GPU {
        let mut one_device_ms = f64::NAN;
        for &p in &counts {
            // P = 1 has no ghosts, hence no frames to encode: one run
            // covers both encodings.
            let row_kinds: &[(&'static str, ExchangeKind)] = if p == 1 {
                &[("-", ExchangeKind::Dense)]
            } else if kinds.len() == 2 {
                &[
                    ("dense", ExchangeKind::Dense),
                    ("delta", ExchangeKind::Delta),
                ]
            } else if kinds[0] == ExchangeKind::Dense {
                &[("dense", ExchangeKind::Dense)]
            } else {
                &[("delta", ExchangeKind::Delta)]
            };
            for &(tag, kind) in row_kinds {
                let opts = cfg.color_options().with_shards(p).with_exchange(kind);
                let r = match scheme.try_color(&g, &dev, &opts) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("warning: {scheme} at P={p} ({tag}) skipped: {e}");
                        continue;
                    }
                };
                gcol_core::verify_coloring(&g, &r.colors)
                    .unwrap_or_else(|e| panic!("{scheme} improper at P={p} ({tag}): {e}"));
                if p == 1 {
                    one_device_ms = r.total_ms();
                }
                let (frontier_bytes, rounds) = frontier_traffic(&r);
                let sp = one_device_ms / r.total_ms();
                table.row(vec![
                    scheme.name().to_string(),
                    format!("{p}"),
                    tag.to_string(),
                    r.num_colors.to_string(),
                    r.iterations.to_string(),
                    rounds.to_string(),
                    frontier_bytes.to_string(),
                    f(r.total_ms(), 2),
                    speedup(sp),
                ]);
                rows.push(Row {
                    scheme: scheme.name(),
                    shards: p,
                    exchange: tag,
                    num_colors: r.num_colors,
                    iterations: r.iterations,
                    rounds,
                    frontier_bytes,
                    ms: r.total_ms(),
                    speedup_vs_one: sp,
                });
            }
        }
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    let mut report = format!(
        "Sharded multi-device scaling — rmat-er scale {} on the {} backend,\n\
         dense vs delta ghost-frontier encodings. Every coloring is verified\n\
         proper; P=1 is the single-device driver (label-identical by\n\
         construction, shared by both encodings). Expected shape: round 1\n\
         ships the full frontier under either encoding, later delta rounds\n\
         shrink to the conflict losers, and the modeled exchange only charges\n\
         the copy tail the receiver cannot hide behind its own compute.\n\n{}",
        cfg.scale,
        cfg.backend,
        table.render()
    );
    if cfg.smoke {
        report.push_str(&smoke_checks(&rows));
    }
    report
}

/// The CI invariants over the A/B rows. Panics on violation.
fn smoke_checks(rows: &[Row]) -> String {
    let mut checked_bytes = 0usize;
    let mut checked_oneround = 0usize;
    for d in rows.iter().filter(|r| r.exchange == "dense") {
        let delta = rows
            .iter()
            .find(|r| r.exchange == "delta" && r.scheme == d.scheme && r.shards == d.shards)
            .unwrap_or_else(|| panic!("smoke: no delta row for {}/P={}", d.scheme, d.shards));
        // Invariant 1: the delta encoding never ships more bytes than
        // dense — the encoder's per-frame fallback guarantees it frame by
        // frame, so it must hold in aggregate for every scheme and P.
        assert!(
            delta.frontier_bytes <= d.frontier_bytes,
            "smoke: {}/P={}: delta frontier ({} B) exceeds dense ({} B)",
            d.scheme,
            d.shards,
            delta.frontier_bytes,
            d.frontier_bytes
        );
        checked_bytes += 1;
        // Invariant 2: a one-round scheme ships one (identical, dense-
        // fallback) frame under either encoding, so delta may not model
        // slower than dense. Multi-round schemes are excluded: smaller
        // later frames change the copy/compute overlap legitimately.
        if d.rounds <= 1 {
            assert!(
                delta.ms <= d.ms * (1.0 + 1e-9),
                "smoke: one-round {}/P={}: delta modeled {} ms regressed below dense {} ms",
                d.scheme,
                d.shards,
                delta.ms,
                d.ms
            );
            checked_oneround += 1;
        }
    }
    assert!(checked_bytes > 0, "smoke: no dense/delta pairs to compare");
    format!(
        "\nsmoke: OK — {checked_bytes} dense/delta byte comparisons, \
         {checked_oneround} one-round time checks, 0 violations\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_core::BackendKind;

    #[test]
    fn shardscale_report_covers_every_scheme_and_count() {
        let cfg = ExpConfig {
            scale: 10,
            backend: BackendKind::Native,
            shards: 3,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for scheme in Scheme::GPU {
            assert!(out.contains(scheme.name()), "missing {scheme}");
        }
        // 1, 2, 4 plus the requested 3.
        assert_eq!(shard_counts(&cfg), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_counts_have_no_duplicates() {
        let cfg = ExpConfig {
            shards: 4,
            ..ExpConfig::default()
        };
        assert_eq!(shard_counts(&cfg), vec![1, 2, 4]);
    }

    #[test]
    fn pinned_exchange_reports_only_that_encoding() {
        let cfg = ExpConfig {
            scale: 9,
            exchange: Some(ExchangeKind::Dense),
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("dense"));
        // Delta appears in the prose header, never as a table row tag.
        if let Some(line) = out.lines().find(|l| l.contains("| delta |")) {
            panic!("unexpected delta row under --exchange dense: {line}");
        }
    }

    #[test]
    fn smoke_invariants_hold_at_small_scale() {
        let cfg = ExpConfig {
            scale: 10,
            smoke: true,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("smoke: OK"), "missing smoke summary:\n{out}");
    }
}

//! Multi-device scaling study: the sharded driver on P ∈ {1, 2, 4}
//! devices (plus `--shards P` if it names a different count), every GPU
//! scheme, on the paper's rmat-er workload.
//!
//! On the simt backend the times are the modeled critical path — phase-A
//! local coloring at max-over-devices plus the ghost-frontier exchange
//! rounds with their d2d transfer charges — so the speedup column shows
//! what the model predicts multi-GPU sharding buys (and where the cut
//! traffic eats the gain). On the native backend the times are wall
//! clock: the shards genuinely run the same kernels over smaller
//! subgraphs, and P=1 reproduces the single-device driver exactly.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, speedup, Table};
use gcol_core::Scheme;
use gcol_graph::gen::{self, RmatParams};
use gcol_simt::Device;
use serde::Serialize;

/// The scaling sweep every run covers.
pub const BASE_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    shards: usize,
    num_colors: usize,
    iterations: usize,
    ms: f64,
    speedup_vs_one: f64,
}

fn shard_counts(cfg: &ExpConfig) -> Vec<usize> {
    let mut counts = BASE_SHARD_COUNTS.to_vec();
    if cfg.shards > 1 && !counts.contains(&cfg.shards) {
        counts.push(cfg.shards);
        counts.sort_unstable();
    }
    counts
}

/// Runs the sweep: every GPU scheme at every shard count, colorings
/// verified, times relative to the same scheme's single-device run.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let counts = shard_counts(cfg);
    let g = gen::rmat(RmatParams::erdos_renyi(cfg.scale, 20), 0xE5);
    let mut table = Table::new(vec![
        "scheme".to_string(),
        "P".to_string(),
        "colors".to_string(),
        "iters".to_string(),
        format!("ms ({})", cfg.backend),
        "speedup vs P=1".to_string(),
    ]);
    let mut rows = Vec::new();
    for scheme in Scheme::GPU {
        let mut one_device_ms = f64::NAN;
        for &p in &counts {
            let opts = cfg.color_options().with_shards(p);
            let r = match scheme.try_color(&g, &dev, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: {scheme} at P={p} skipped: {e}");
                    continue;
                }
            };
            gcol_core::verify_coloring(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{scheme} improper at P={p}: {e}"));
            if p == 1 {
                one_device_ms = r.total_ms();
            }
            let sp = one_device_ms / r.total_ms();
            table.row(vec![
                scheme.name().to_string(),
                format!("{p}"),
                r.num_colors.to_string(),
                r.iterations.to_string(),
                f(r.total_ms(), 2),
                speedup(sp),
            ]);
            rows.push(Row {
                scheme: scheme.name(),
                shards: p,
                num_colors: r.num_colors,
                iterations: r.iterations,
                ms: r.total_ms(),
                speedup_vs_one: sp,
            });
        }
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Sharded multi-device scaling — rmat-er scale {} on the {} backend.\n\
         Every coloring is verified proper; P=1 is the single-device driver\n\
         (label-identical by construction). Expected shape: local-phase time\n\
         shrinks with P while exchange rounds add a cut-proportional tax.\n\n{}",
        cfg.scale,
        cfg.backend,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_core::BackendKind;

    #[test]
    fn shardscale_report_covers_every_scheme_and_count() {
        let cfg = ExpConfig {
            scale: 10,
            backend: BackendKind::Native,
            shards: 3,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for scheme in Scheme::GPU {
            assert!(out.contains(scheme.name()), "missing {scheme}");
        }
        // 1, 2, 4 plus the requested 3.
        assert_eq!(shard_counts(&cfg), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_counts_have_no_duplicates() {
        let cfg = ExpConfig {
            shards: 4,
            ..ExpConfig::default()
        };
        assert_eq!(shard_counts(&cfg), vec![1, 2, 4]);
    }
}

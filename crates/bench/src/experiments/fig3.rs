//! Fig. 3: why coloring kernels are memory-latency bound.
//! (a) achieved compute throughput and memory bandwidth, both expected
//! below ~60% of peak; (b) the stall-reason breakdown, expected to be
//! dominated by memory dependency.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, Table};

use gcol_core::Scheme;
use gcol_simt::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    compute_pct: f64,
    bandwidth_pct: f64,
    stall_memory_pct: f64,
    stall_exec_pct: f64,
    stall_sync_pct: f64,
    stall_fetch_pct: f64,
    stall_other_pct: f64,
}

/// Runs the Fig. 3 experiment: profiles the T-base kernels over the suite.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    let mut table = Table::new(vec![
        "graph",
        "compute %",
        "bandwidth %",
        "| mem dep %",
        "exec dep %",
        "sync %",
        "fetch %",
        "other %",
    ]);
    let mut rows = Vec::new();
    for e in &suite {
        let r = Scheme::TopoBase.color(&e.graph, &dev, &opts);
        let (bw, ipc, stalls) = r
            .profile
            .aggregate_kernel_metrics()
            .expect("topology-driven run always launches kernels");
        table.row(vec![
            e.name.to_string(),
            f(ipc * 100.0, 1),
            f(bw * 100.0, 1),
            f(stalls.memory_dependency * 100.0, 1),
            f(stalls.execution_dependency * 100.0, 1),
            f(stalls.synchronization * 100.0, 1),
            f(stalls.instruction_fetch * 100.0, 1),
            f(stalls.other * 100.0, 1),
        ]);
        rows.push(Row {
            graph: e.name.to_string(),
            compute_pct: ipc * 100.0,
            bandwidth_pct: bw * 100.0,
            stall_memory_pct: stalls.memory_dependency * 100.0,
            stall_exec_pct: stalls.execution_dependency * 100.0,
            stall_sync_pct: stalls.synchronization * 100.0,
            stall_fetch_pct: stalls.instruction_fetch * 100.0,
            stall_other_pct: stalls.other * 100.0,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Fig. 3 — kernel characterization (T-base, time-weighted over all\n\
         launches). Expected shape: (a) compute and bandwidth both below\n\
         ~60% of peak (latency bound); (b) memory dependency dominates the\n\
         stall breakdown.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn kernels_look_latency_bound_at_small_scale() {
        let cfg = ExpConfig {
            scale: 11,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("rmat-er"));
        assert!(out.contains("mem dep"));
    }
}

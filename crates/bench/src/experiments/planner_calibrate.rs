//! Fits the planner's decision table offline and prints it as Rust.
//!
//! Runs every candidate scheme over the generated Table I suite at
//! several scales (modeled simt times, deterministic), builds one
//! regression sample per (scheme, graph, scale) — the planner's feature
//! vector against `ln(ms)` and `ln(colors)` — and solves a small ridge
//! least-squares system per scheme. The output is a pasteable `MODELS`
//! block for `crates/plan/src/model.rs`; there is **no runtime fitting**
//! anywhere — this experiment is the only place coefficients come from.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, Table};
use gcol_core::Scheme;
use gcol_plan::model::NUM_FEATURES;
use gcol_plan::{features, Planner};
use gcol_simt::Device;
use serde::Serialize;

/// Ridge regularizer: tiny, just enough to keep the normal equations
/// well-conditioned when a feature column is (near-)constant over the
/// small generated suite.
const RIDGE_LAMBDA: f64 = 1e-4;

/// Scales sampled up to the requested `--scale` so the size features
/// carry signal (a single scale would make `n`/`m` collinear with bias)
/// and the fit brackets the launch-overhead → throughput crossover the
/// quadratic edge feature models.
const SCALE_STEPS: [u32; 6] = [5, 4, 3, 2, 1, 0];

/// Floor for measured values before the log transform.
const LOG_FLOOR: f64 = 1e-9;

/// One fitted row, serialized for `--json` alongside its fit quality.
#[derive(Debug, Clone, Serialize)]
pub struct FittedScheme {
    /// The scheme this row scores.
    pub scheme: Scheme,
    /// Fitted `ln(ms)` coefficients.
    pub time_w: Vec<f64>,
    /// Fitted `ln(colors)` coefficients.
    pub color_w: Vec<f64>,
    /// RMS error of `ln(ms)` over the training samples.
    pub time_rms: f64,
    /// RMS error of `ln(colors)` over the training samples.
    pub color_rms: f64,
    /// Number of (graph, scale) samples behind the fit.
    pub samples: usize,
}

/// Solves `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial
/// pivoting. The system is `NUM_FEATURES × NUM_FEATURES` — tiny.
fn ridge_solve(xs: &[[f64; NUM_FEATURES]], ys: &[f64]) -> [f64; NUM_FEATURES] {
    let k = NUM_FEATURES;
    let mut a = [[0.0f64; NUM_FEATURES + 1]; NUM_FEATURES];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..k {
            for j in 0..k {
                a[i][j] += x[i] * x[j];
            }
            a[i][k] += x[i] * y;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += RIDGE_LAMBDA;
    }
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&r, &s| a[r][col].abs().partial_cmp(&a[s][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot);
        let p = a[col][col];
        assert!(p.abs() > 0.0, "singular normal equations despite ridge");
        for v in a[col].iter_mut().skip(col) {
            *v /= p;
        }
        let pivot_row = a[col];
        for (r, row) in a.iter_mut().enumerate() {
            if r != col && row[col] != 0.0 {
                let factor = row[col];
                for (v, pv) in row.iter_mut().zip(&pivot_row).skip(col) {
                    *v -= factor * pv;
                }
            }
        }
    }
    let mut w = [0.0; NUM_FEATURES];
    for i in 0..k {
        w[i] = a[i][k];
    }
    w
}

fn rms(xs: &[[f64; NUM_FEATURES]], ys: &[f64], w: &[f64; NUM_FEATURES]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let se: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, &y)| {
            let pred: f64 = x.iter().zip(w).map(|(a, b)| a * b).sum();
            (pred - y) * (pred - y)
        })
        .sum();
    (se / xs.len() as f64).sqrt()
}

fn fmt_weights(w: &[f64]) -> String {
    let cells: Vec<String> = w.iter().map(|v| format!("{v:.6}")).collect();
    format!("[{}]", cells.join(", "))
}

/// Collects training samples and fits both predictors for every
/// candidate scheme. Public so the experiment is testable end to end.
pub fn fit(cfg: &ExpConfig) -> Vec<FittedScheme> {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let schemes: Vec<Scheme> = Planner::new().candidates().to_vec();

    // sample matrix per scheme: features + the two log targets
    let mut xs: Vec<Vec<[f64; NUM_FEATURES]>> = vec![Vec::new(); schemes.len()];
    let mut y_ms: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut y_colors: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for step in SCALE_STEPS {
        let scale = cfg.scale.saturating_sub(step).max(8);
        for entry in crate::suite::build_suite(scale) {
            let feat = features(&entry.profile());
            for (si, &scheme) in schemes.iter().enumerate() {
                let r = match scheme.try_color(&entry.graph, &dev, &opts) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("warning: {scheme} on {} s{scale} skipped: {e}", entry.name);
                        continue;
                    }
                };
                xs[si].push(feat);
                y_ms[si].push(r.total_ms().max(LOG_FLOOR).ln());
                y_colors[si].push((r.num_colors as f64).max(1.0).ln());
            }
        }
    }

    schemes
        .iter()
        .enumerate()
        .map(|(si, &scheme)| {
            let time_w = ridge_solve(&xs[si], &y_ms[si]);
            let color_w = ridge_solve(&xs[si], &y_colors[si]);
            FittedScheme {
                scheme,
                time_rms: rms(&xs[si], &y_ms[si], &time_w),
                color_rms: rms(&xs[si], &y_colors[si], &color_w),
                samples: xs[si].len(),
                time_w: time_w.to_vec(),
                color_w: color_w.to_vec(),
            }
        })
        .collect()
}

/// Renders one fitted row as the `SchemeModel` literal to paste into
/// `model.rs`.
fn render_model(fitted: &FittedScheme) -> String {
    format!(
        "    SchemeModel {{\n        scheme: Scheme::{:?},\n        time_w: {},\n        color_w: {},\n    }},",
        fitted.scheme,
        fmt_weights(&fitted.time_w),
        fmt_weights(&fitted.color_w),
    )
}

/// Runs the calibration and prints the pasteable table plus fit quality.
pub fn run(cfg: &ExpConfig) -> String {
    let fitted = fit(cfg);
    maybe_write_json(cfg.json.as_deref(), &fitted).expect("json write");

    let mut quality = Table::new(vec!["scheme", "samples", "ln(ms) rms", "ln(colors) rms"]);
    for row in &fitted {
        quality.row(vec![
            row.scheme.to_string(),
            row.samples.to_string(),
            f(row.time_rms, 4),
            f(row.color_rms, 4),
        ]);
    }

    let scales: Vec<String> = SCALE_STEPS
        .iter()
        .map(|s| format!("s{}", cfg.scale.saturating_sub(*s).max(8)))
        .collect();
    let mut out = format!(
        "planner-calibrate — ridge fit (λ = {RIDGE_LAMBDA}) over the generated suite at {}\n\n{}\n",
        scales.join(", "),
        quality.render()
    );
    out.push_str(
        "\npaste the block below over `MODELS` in crates/plan/src/model.rs:\n\n\
         pub static MODELS: [SchemeModel; ",
    );
    out.push_str(&format!("{}] = [\n", fitted.len()));
    for row in &fitted {
        out.push_str(&render_model(row));
        out.push('\n');
    }
    out.push_str("];\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_recovers_a_planted_linear_model() {
        // y = 2 + 3·f1 − 1·f2 exactly; the solver must recover it.
        let truth = [2.0, 3.0, -1.0, 0.5, 0.0, 0.0, 0.0];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40u32 {
            let mut x = [1.0; NUM_FEATURES];
            for (j, slot) in x.iter_mut().enumerate().skip(1) {
                // Deterministic, full-rank-ish spread of feature values.
                *slot = (((i as usize * 7 + j * 13) % 29) as f64) / 7.0;
            }
            xs.push(x);
            ys.push(x.iter().zip(&truth).map(|(a, b)| a * b).sum());
        }
        let w = ridge_solve(&xs, &ys);
        for (got, want) in w.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-3, "{w:?} vs {truth:?}");
        }
    }

    #[test]
    fn fit_produces_finite_models_for_every_candidate() {
        let cfg = ExpConfig {
            scale: 9,
            ..ExpConfig::default()
        };
        let fitted = fit(&cfg);
        assert_eq!(fitted.len(), Planner::new().candidates().len());
        for row in &fitted {
            assert!(row.samples >= 6, "{}: too few samples", row.scheme);
            for w in row.time_w.iter().chain(&row.color_w) {
                assert!(w.is_finite(), "{}: non-finite weight", row.scheme);
            }
            assert!(row.time_rms.is_finite() && row.color_rms.is_finite());
        }
        // Output embeds a pasteable Rust block.
        let out = run(&cfg);
        assert!(out.contains("pub static MODELS"), "{out}");
        assert!(out.contains("SchemeModel {"), "{out}");
    }
}

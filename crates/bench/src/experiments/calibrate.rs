//! Calibration check: how the CPU cost model (the modeled Xeon E5-2670
//! sequential baseline every speedup is normalized to) compares against
//! the *actual* wall-clock of this crate's Rust sequential implementation
//! on the current host. The two need not match — different CPU, different
//! compiler — but they should be the same order of magnitude; this
//! experiment makes the calibration visible instead of hiding it.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, Table};

use gcol_core::seq::greedy_seq;
use gcol_graph::ordering::Ordering;
use gcol_simt::CpuModel;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    modeled_ms: f64,
    wall_ms: f64,
    ratio: f64,
    ns_per_edge_wall: f64,
}

/// Runs the calibration experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let model = CpuModel::xeon_e5_2670();
    let suite = cfg.suite();
    let mut table = Table::new(vec![
        "graph",
        "modeled ms",
        "wall ms",
        "model/wall",
        "ns/edge (wall)",
    ]);
    let mut rows = Vec::new();
    for e in &suite {
        let modeled = model.greedy_sweep_ms(e.graph.num_vertices(), e.graph.num_edges());
        // Median of three wall-clock runs.
        let mut walls: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let r = greedy_seq(&e.graph, Ordering::Natural);
                std::hint::black_box(r.num_colors);
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        walls.sort_by(f64::total_cmp);
        let wall = walls[1];
        let ratio = modeled / wall;
        table.row(vec![
            e.name.to_string(),
            f(modeled, 3),
            f(wall, 3),
            f(ratio, 2),
            f(wall * 1e6 / e.graph.num_edges() as f64, 2),
        ]);
        rows.push(Row {
            graph: e.name.to_string(),
            modeled_ms: modeled,
            wall_ms: wall,
            ratio,
            ns_per_edge_wall: wall * 1e6 / e.graph.num_edges() as f64,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "CPU-model calibration — modeled Xeon E5-2670 vs measured wall\n\
         clock of the Rust sequential greedy on this host. Ratios within\n\
         roughly 0.3x–3x indicate a sane model.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_same_order_of_magnitude() {
        let cfg = ExpConfig {
            scale: 13,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("model/wall"));
    }
}

//! Coloring-quality league table (beyond the paper's Fig. 6): every scheme
//! in the library — the paper's seven plus the extension algorithms from
//! its related-work section — ranked by colors used, with the degeneracy+1
//! lower-bound-ish reference (greedy in smallest-degree-last order attains
//! it) alongside.

use super::ExpConfig;
use crate::report::{maybe_write_json, Table};

use gcol_core::Scheme;
use gcol_graph::ordering::{degeneracy, Ordering};
use gcol_simt::Device;
use serde::Serialize;

/// All schemes in quality order of interest.
pub fn quality_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Sequential,
        Scheme::CpuGm,
        Scheme::CpuRokos,
        Scheme::DataLdg,
        Scheme::TopoLdg,
        Scheme::ThreeStepGm,
        Scheme::CpuJpLlf,
        Scheme::CpuJpSl,
        Scheme::CpuJp,
        Scheme::CsrColor,
    ]
}

#[derive(Serialize)]
struct Row {
    graph: String,
    degeneracy_plus_one: usize,
    sdl_greedy: usize,
    colors: Vec<(String, usize)>,
}

/// Runs the quality league table.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    let schemes = quality_schemes();
    let mut header: Vec<String> = vec!["graph".into(), "degen+1".into(), "SDL".into()];
    header.extend(schemes.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(header);
    let mut rows = Vec::new();
    for e in &suite {
        let degen = degeneracy(&e.graph) + 1;
        let sdl = gcol_core::seq::greedy_seq(&e.graph, Ordering::SmallestDegreeLast).num_colors;
        let mut cells = vec![e.name.to_string(), degen.to_string(), sdl.to_string()];
        let mut colors = Vec::new();
        for &scheme in &schemes {
            let r = scheme.color(&e.graph, &dev, &opts);
            gcol_core::verify_coloring(&e.graph, &r.colors).unwrap();
            cells.push(r.num_colors.to_string());
            colors.push((scheme.name().to_string(), r.num_colors));
        }
        table.row(cells);
        rows.push(Row {
            graph: e.name.to_string(),
            degeneracy_plus_one: degen,
            sdl_greedy: sdl,
            colors,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Quality league table — colors used by every scheme (lower is\n\
         better; `degen+1` is the degeneracy bound that SDL-ordered greedy\n\
         attains). Expected ordering: greedy family ≤ ordered-JP family\n\
         < plain JP < csrcolor.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn league_table_orders_families_correctly() {
        let cfg = ExpConfig {
            scale: 11,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("degen+1"));
        assert!(out.contains("cpu-JP-SL"));
    }
}

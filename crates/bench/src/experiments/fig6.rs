//! Fig. 6: number of colors used by each of the seven schemes per graph.
//! Expected shape: the six SGR-derived schemes cluster within a few colors
//! of the sequential count; csrcolor needs several times more (the paper
//! reports 4.9×–23×).

use super::{ExpConfig, GraphResults};
use crate::report::{f, maybe_write_json, Table};
use gcol_core::Scheme;

/// Renders the Fig. 6 report from precomputed runs.
pub fn render(results: &[GraphResults]) -> String {
    let schemes = Scheme::paper_seven();
    let mut header: Vec<String> = vec!["graph".into()];
    header.extend(schemes.iter().map(|s| s.name().to_string()));
    header.push("csrcolor/seq".into());
    let mut table = Table::new(header);
    for g in results {
        let mut cells = vec![g.graph.clone()];
        let mut seq_colors = 1usize;
        let mut csr_colors = 1usize;
        for run in &g.runs {
            cells.push(run.num_colors.to_string());
            match run.scheme {
                Scheme::Sequential => seq_colors = run.num_colors,
                Scheme::CsrColor => csr_colors = run.num_colors,
                _ => {}
            }
        }
        cells.push(f(csr_colors as f64 / seq_colors.max(1) as f64, 1));
        table.row(cells);
    }
    format!(
        "Fig. 6 — colors per scheme (fewer is better).\n\
         Expected shape: SGR schemes ≈ sequential; csrcolor several times\n\
         more (paper: 4.9x–23x).\n\n{}",
        table.render()
    )
}

/// Runs the experiment standalone.
pub fn run(cfg: &ExpConfig) -> String {
    let results = super::run_suite_all_schemes(cfg);
    maybe_write_json(cfg.json.as_deref(), &results).expect("json write");
    render(&results)
}

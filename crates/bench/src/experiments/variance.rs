//! Robustness / variance study. The paper runs every benchmark 10 times
//! and averages "to avoid system noise"; our Deterministic simulator has
//! no timing noise, but two other variance sources remain and deserve the
//! same treatment:
//!
//! 1. **Generator seeds** — the suite graphs are random instances; do the
//!    headline ratios survive resampling the graphs themselves?
//! 2. **Hash seeds** — csrcolor's and JP's priorities are seeded; how much
//!    do their color counts wobble?

use super::{geomean, ExpConfig};
use crate::report::{f, maybe_write_json, Table};
use crate::suite::build_graph;
use gcol_core::{ColorOptions, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_simt::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    what: String,
    values: Vec<f64>,
    min: f64,
    max: f64,
    spread_pct: f64,
}

fn spread(values: &[f64]) -> (f64, f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    (min, max, (max / min - 1.0) * 100.0)
}

/// Runs the variance study.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let mut table = Table::new(vec!["quantity", "samples", "min", "max", "spread %"]);
    let mut rows = Vec::new();
    let mut push = |what: &str, values: Vec<f64>, digits: usize| {
        let (min, max, pct) = spread(&values);
        table.row(vec![
            what.to_string(),
            values
                .iter()
                .map(|v| f(*v, digits))
                .collect::<Vec<_>>()
                .join(" "),
            f(min, digits),
            f(max, digits),
            f(pct, 1),
        ]);
        rows.push(Row {
            what: what.to_string(),
            values,
            min,
            max,
            spread_pct: pct,
        });
    };

    // 1. Resample the rmat-er instance with three generator seeds and
    //    track the D-ldg speedup and the csrcolor color-inflation ratio.
    let mut d_speedups = Vec::new();
    let mut inflations = Vec::new();
    for seed in [0xE5u64, 0x1234, 0xFEED] {
        let g = gen::rmat(RmatParams::erdos_renyi(cfg.scale.min(15), 20), seed);
        let seq = Scheme::Sequential.color(&g, &dev, &opts);
        let d = Scheme::DataLdg.color(&g, &dev, &opts);
        let c = Scheme::CsrColor.color(&g, &dev, &opts);
        d_speedups.push(seq.total_ms() / d.total_ms());
        inflations.push(c.num_colors as f64 / seq.num_colors as f64);
    }
    push("rmat-er resample: D-ldg speedup", d_speedups, 2);
    push("rmat-er resample: csr/seq colors", inflations, 2);

    // 2. Hash-seed wobble of csrcolor and JP color counts on a fixed graph
    //    (the `--graph` file when one was given).
    let g = match cfg.graph_override() {
        Some(e) => e.graph,
        None => build_graph("thermal2", cfg.scale.min(15)),
    };
    let mut csr_colors = Vec::new();
    let mut jp_colors = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let o = ColorOptions {
            seed,
            ..opts.clone()
        };
        csr_colors.push(Scheme::CsrColor.color(&g, &dev, &o).num_colors as f64);
        jp_colors.push(Scheme::CpuJp.color(&g, &dev, &o).num_colors as f64);
    }
    push("thermal2: csrcolor colors over 5 seeds", csr_colors, 0);
    push("thermal2: plain-JP colors over 5 seeds", jp_colors, 0);

    // 3. Determinism control: the same configuration twice must agree
    //    exactly (spread 0).
    let a = Scheme::DataLdg.color(&g, &dev, &opts).total_ms();
    let b = Scheme::DataLdg.color(&g, &dev, &opts).total_ms();
    push("thermal2: D-ldg modeled ms, repeated run", vec![a, b], 4);

    let _ = geomean([1.0]); // keep the shared helper exercised in docs
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Variance study — the reproduction's analogue of the paper's\n\
         10-run averaging. Generator resampling and hash seeds wobble the\n\
         numbers a few percent; the repeated-run control must show 0%\n\
         (the simulator is deterministic).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn deterministic_control_shows_zero_spread() {
        let cfg = ExpConfig {
            scale: 10,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        let control_line = out
            .lines()
            .find(|l| l.contains("repeated run"))
            .expect("control row present");
        assert!(
            control_line.trim_end().ends_with("0.0"),
            "determinism control must show zero spread: {control_line}"
        );
    }
}

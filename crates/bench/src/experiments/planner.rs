//! Planner A/B — the regret experiment behind `scheme: "auto"`.
//!
//! For every suite graph (or a `--graph` file), measures each candidate
//! scheme of the checked-in decision table on modeled simt times, then
//! asks the planner what it *would* run under each SLO and executes the
//! resolved plan. Regret is the ratio of the plan's time to the
//! per-graph best under `FastestWall`, and the color overhead over the
//! per-graph fewest under `FewestColors`.
//!
//! `--smoke` is the tier-1 CI gate: three small generators, modeled
//! (deterministic) simt times only — no wall-clock flakiness — with the
//! bounds of the acceptance criteria: wall regret ≤ 1.10 under
//! `FastestWall`, at most +1 color under `FewestColors`.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, Table};
use crate::suite::SuiteEntry;
use gcol_core::{BackendKind, ColorOptions, Scheme};
use gcol_graph::GraphProfile;
use gcol_plan::{Plan, Planner, Resources, Slo};
use gcol_simt::Device;
use serde::Serialize;

/// Wall-regret bound of the CI gate (`FastestWall`).
pub const SMOKE_WALL_REGRET: f64 = 1.10;
/// Color-overhead bound of the CI gate (`FewestColors`).
pub const SMOKE_COLOR_OVERHEAD: i64 = 1;
/// The three small generators the smoke gate runs on.
pub const SMOKE_GRAPHS: [&str; 3] = ["rmat-er", "rmat-g", "G3_circuit"];

/// One candidate's predicted and measured outcome on one graph.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CandidateRow {
    /// The candidate scheme.
    pub scheme: Scheme,
    /// Model-predicted modeled milliseconds.
    pub predicted_ms: f64,
    /// Model-predicted colors.
    pub predicted_colors: f64,
    /// Measured modeled milliseconds.
    pub ms: f64,
    /// Measured colors.
    pub colors: usize,
}

/// The planner's choice under one SLO, with its regret.
#[derive(Debug, Clone, Serialize)]
pub struct SloDecision {
    /// SLO name.
    pub slo: String,
    /// The scheme the planner chose.
    pub chosen: Scheme,
    /// Measured time of the resolved plan.
    pub chosen_ms: f64,
    /// Measured colors of the resolved plan.
    pub chosen_colors: usize,
    /// Fastest candidate on this graph.
    pub best_wall_scheme: Scheme,
    /// Its measured time.
    pub best_ms: f64,
    /// Fewest-colors candidate on this graph.
    pub best_colors_scheme: Scheme,
    /// Its measured colors.
    pub best_colors: usize,
    /// `chosen_ms / best_ms`.
    pub wall_regret: f64,
    /// `chosen_colors − best_colors`.
    pub color_overhead: i64,
}

/// Everything recorded per graph: profile, the full decision table, the
/// per-SLO choices.
#[derive(Debug, Clone, Serialize)]
pub struct GraphDecision {
    /// Graph name.
    pub graph: String,
    /// The single-pass profile the planner saw.
    pub profile: GraphProfile,
    /// Predicted + measured outcome per candidate.
    pub candidates: Vec<CandidateRow>,
    /// Choice and regret per SLO.
    pub decisions: Vec<SloDecision>,
}

/// Measures every candidate scheme on one graph and scores them with the
/// model — the raw decision table.
pub fn candidate_table(
    entry: &SuiteEntry,
    dev: &Device,
    opts: &ColorOptions,
    planner: &Planner,
) -> (GraphProfile, Vec<CandidateRow>) {
    let profile = entry.profile();
    let preds = planner.score(&profile);
    let rows = preds
        .iter()
        .filter_map(|p| {
            let r = match p.scheme.try_color(&entry.graph, dev, opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: {} on {} skipped: {e}", p.scheme, entry.name);
                    return None;
                }
            };
            gcol_core::verify_coloring(&entry.graph, &r.colors)
                .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", p.scheme, entry.name));
            Some(CandidateRow {
                scheme: p.scheme,
                predicted_ms: p.predicted_ms,
                predicted_colors: p.predicted_colors,
                ms: r.total_ms(),
                colors: r.num_colors,
            })
        })
        .collect();
    (profile, rows)
}

fn decide(
    entry: &SuiteEntry,
    dev: &Device,
    opts: &ColorOptions,
    planner: &Planner,
    profile: &GraphProfile,
    candidates: &[CandidateRow],
    slo: Slo,
) -> (SloDecision, Plan) {
    let plan = planner.plan(profile, slo, &Resources::from_options(opts));
    let spec = plan.spec(opts);
    let chosen = spec
        .scheme
        .try_color(&entry.graph, dev, &spec.opts)
        .unwrap_or_else(|e| panic!("resolved plan {:?} failed on {}: {e}", plan, entry.name));
    gcol_core::verify_coloring(&entry.graph, &chosen.colors)
        .unwrap_or_else(|e| panic!("plan {:?} invalid on {}: {e}", plan, entry.name));

    let best_wall = candidates
        .iter()
        .min_by(|a, b| a.ms.partial_cmp(&b.ms).unwrap())
        .expect("no candidates");
    let best_colors = candidates
        .iter()
        .min_by_key(|c| c.colors)
        .expect("no candidates");
    (
        SloDecision {
            slo: slo.name().to_string(),
            chosen: plan.scheme,
            chosen_ms: chosen.total_ms(),
            chosen_colors: chosen.num_colors,
            best_wall_scheme: best_wall.scheme,
            best_ms: best_wall.ms,
            best_colors_scheme: best_colors.scheme,
            best_colors: best_colors.colors,
            wall_regret: chosen.total_ms() / best_wall.ms,
            color_overhead: chosen.num_colors as i64 - best_colors.colors as i64,
        },
        plan,
    )
}

/// Runs the planner A/B. With `--smoke`, runs the CI gate instead:
/// three small generators, modeled simt times, regret bounds asserted.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let planner = Planner::new();

    // The gate runs on modeled (deterministic) simt times at one shard —
    // never on wall clock — so it cannot flake in CI.
    let mut opts = cfg.color_options();
    if cfg.smoke {
        opts.backend = BackendKind::Simt;
        opts.num_shards = 1;
    }

    let suite: Vec<SuiteEntry> = if cfg.smoke && cfg.graph.is_none() {
        crate::suite::build_suite(cfg.scale)
            .into_iter()
            .filter(|e| SMOKE_GRAPHS.contains(&e.name.as_str()))
            .collect()
    } else {
        cfg.suite()
    };

    let slos: Vec<Slo> = match cfg.slo {
        Some(slo) => vec![slo],
        None => vec![Slo::FastestWall, Slo::FewestColors, Slo::balanced()],
    };

    let mut rows: Vec<GraphDecision> = Vec::new();
    for entry in &suite {
        let (profile, candidates) = candidate_table(entry, &dev, &opts, &planner);
        let decisions = slos
            .iter()
            .map(|&slo| decide(entry, &dev, &opts, &planner, &profile, &candidates, slo).0)
            .collect();
        rows.push(GraphDecision {
            graph: entry.name.clone(),
            profile,
            candidates,
            decisions,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");

    let mut out = format!(
        "planner A/B — auto vs per-graph best over {} candidates, scale {}\n\
         (modeled {} times; regret = auto ms / best ms, overhead = auto colors − fewest)\n",
        planner.candidates().len(),
        cfg.scale,
        match opts.backend {
            BackendKind::Native => "native wall-clock",
            _ => "simt",
        },
    );

    for slo in &slos {
        let mut table = Table::new(vec![
            "graph",
            "cv",
            "auto choice",
            "auto ms",
            "best scheme",
            "best ms",
            "regret",
            "auto colors",
            "fewest",
            "+colors",
        ]);
        let mut regrets = Vec::new();
        for row in &rows {
            let d = row
                .decisions
                .iter()
                .find(|d| d.slo == slo.name())
                .expect("decision recorded");
            regrets.push(d.wall_regret);
            table.row(vec![
                row.graph.clone(),
                f(row.profile.degree_cv(), 2),
                d.chosen.to_string(),
                f(d.chosen_ms, 4),
                d.best_wall_scheme.to_string(),
                f(d.best_ms, 4),
                f(d.wall_regret, 3),
                d.chosen_colors.to_string(),
                format!("{} ({})", d.best_colors, d.best_colors_scheme),
                format!("{:+}", d.color_overhead),
            ]);
        }
        out.push_str(&format!(
            "\nSLO {} — geomean wall regret {:.3}\n{}",
            slo.name(),
            super::geomean(regrets),
            table.render()
        ));
    }

    // The acceptance gates. Under --smoke a violation panics (the CI
    // signal); the full report prints the verdict per graph.
    let mut violations = Vec::new();
    for row in &rows {
        for d in &row.decisions {
            if d.slo == Slo::FastestWall.name() && d.wall_regret > SMOKE_WALL_REGRET {
                violations.push(format!(
                    "{}: fastest-wall regret {:.3} > {SMOKE_WALL_REGRET} \
                     (auto {} {:.4} ms vs best {} {:.4} ms)",
                    row.graph, d.wall_regret, d.chosen, d.chosen_ms, d.best_wall_scheme, d.best_ms
                ));
            }
            if d.slo == Slo::FewestColors.name() && d.color_overhead > SMOKE_COLOR_OVERHEAD {
                violations.push(format!(
                    "{}: fewest-colors overhead {:+} > +{SMOKE_COLOR_OVERHEAD} \
                     (auto {} {} colors vs fewest {} {})",
                    row.graph,
                    d.color_overhead,
                    d.chosen,
                    d.chosen_colors,
                    d.best_colors_scheme,
                    d.best_colors
                ));
            }
        }
    }
    if violations.is_empty() {
        out.push_str("\nregret gates: PASS (fastest-wall ≤ 1.10x, fewest-colors ≤ +1)\n");
    } else {
        out.push_str(&format!(
            "\nregret gates: FAIL\n  {}\n",
            violations.join("\n  ")
        ));
        if cfg.smoke {
            panic!(
                "planner --smoke regret gate failed:\n  {}",
                violations.join("\n  ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gate_passes_on_small_generators() {
        let cfg = ExpConfig {
            scale: 10,
            smoke: true,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("regret gates: PASS"), "{out}");
        for g in SMOKE_GRAPHS {
            assert!(out.contains(g), "missing {g}:\n{out}");
        }
        // Smoke runs exactly the three generators, all three SLOs.
        assert!(out.contains("SLO fastest-wall"));
        assert!(out.contains("SLO fewest-colors"));
        assert!(out.contains("SLO balanced"));
    }

    #[test]
    fn single_slo_flag_restricts_the_report() {
        let cfg = ExpConfig {
            scale: 10,
            smoke: true,
            slo: Some(Slo::FastestWall),
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("SLO fastest-wall"));
        assert!(!out.contains("SLO fewest-colors"));
    }
}

//! Service load generator: replays an open-loop arrival trace against a
//! live [`gcol_serve::Service`] and reports throughput and latency
//! percentiles.
//!
//! Open-loop means arrivals follow a pre-generated schedule and are
//! *not* gated on completions — exactly the regime where a bounded
//! queue, coalescing and the result cache earn their keep. Two knobs
//! span the interesting space:
//!
//! * **arrival timing** — `--rate R` jobs/s paces the trace (uniform
//!   spacing, or 16-job bursts for the bursty trace); `--rate 0` (the
//!   default) submits the whole trace at once, measuring peak service
//!   throughput.
//! * **content mix** — the unique trace gives every job a distinct
//!   fingerprint (worst case for the cache); the duplicate-heavy trace
//!   draws from [`DUPLICATE_POOL_SIZE`] distinct jobs, so after each
//!   pool member's first execution everything is served by coalescing
//!   or the cache.
//!
//! With no `--trace`, the full A/B grid runs — {1, N} workers ×
//! {unique, duplicate} — producing the `service_throughput` table of
//! BENCH_simt.json in one command. `--smoke` instead runs the fast CI
//! invariant checks (zero rejections on an idle service, 100% cache
//! hits on a duplicate-only replay) and panics on any violation.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, speedup, Table};
use gcol_core::{JobSpec, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::Csr;
use gcol_serve::{JobRequest, ResultSource, Service, ServiceConfig};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinct jobs in the duplicate-heavy trace.
pub const DUPLICATE_POOL_SIZE: usize = 4;

/// Jobs per burst in the bursty trace.
pub const BURST_SIZE: usize = 16;

/// Loadgen-specific CLI options (the shared knobs ride in [`ExpConfig`]).
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Worker threads for the "scaled" service configuration.
    pub workers: usize,
    /// Jobs per trace replay.
    pub jobs: usize,
    /// Arrival rate in jobs/s; 0 = unpaced (submit everything at once).
    pub rate: f64,
    /// Specific trace to replay; `None` runs the A/B grid.
    pub trace: Option<TraceKind>,
    /// Run the CI invariant checks instead of the measurement.
    pub smoke: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            jobs: 200,
            rate: 0.0,
            trace: None,
            smoke: false,
        }
    }
}

/// Which trace to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Distinct fingerprints, uniform arrival spacing.
    Uniform,
    /// Distinct fingerprints, arrivals in bursts of [`BURST_SIZE`].
    Bursty,
    /// Fingerprints drawn from a pool of [`DUPLICATE_POOL_SIZE`] jobs.
    Duplicate,
    /// Alias of [`TraceKind::Uniform`] content with unpaced arrivals in
    /// the A/B grid (the cache's worst case).
    Unique,
}

impl TraceKind {
    /// CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Uniform => "uniform",
            TraceKind::Bursty => "bursty",
            TraceKind::Duplicate => "duplicate",
            TraceKind::Unique => "unique",
        }
    }

    /// Parses a `--trace` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(TraceKind::Uniform),
            "bursty" => Some(TraceKind::Bursty),
            "duplicate" | "dup" => Some(TraceKind::Duplicate),
            "unique" => Some(TraceKind::Unique),
            _ => None,
        }
    }

    fn is_duplicate(&self) -> bool {
        matches!(self, TraceKind::Duplicate)
    }
}

/// One measured configuration, as written to the JSON report.
#[derive(Debug, Serialize)]
pub struct TraceResult {
    /// Trace name.
    pub trace: &'static str,
    /// Service worker threads.
    pub workers: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Arrival rate (jobs/s; 0 = unpaced).
    pub rate: f64,
    /// Wall time from first submission to last resolution, seconds.
    pub wall_s: f64,
    /// Resolved-ok jobs per second of wall time.
    pub throughput: f64,
    /// Jobs that executed cold.
    pub executions: u64,
    /// Jobs served from the result cache.
    pub cache_hits: u64,
    /// Jobs attached to an in-flight twin.
    pub coalesced: u64,
    /// Admission rejections (should be 0: the queue is sized to the trace).
    pub rejected: u64,
    /// Median submission-to-resolution latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
}

/// The job spec for trace position `i`: same graph and scheme for every
/// job, fingerprints separated (or pooled) through the coloring seed.
fn spec_for(cfg: &ExpConfig, kind: TraceKind, i: usize) -> JobSpec {
    let seed = if kind.is_duplicate() {
        (i % DUPLICATE_POOL_SIZE) as u64
    } else {
        i as u64
    };
    JobSpec {
        scheme: Scheme::TopoBase,
        opts: cfg.color_options().with_seed(seed),
    }
}

/// Pre-generated arrival offsets for an open-loop replay.
fn arrivals(kind: TraceKind, jobs: usize, rate: f64) -> Vec<Duration> {
    if rate <= 0.0 {
        return vec![Duration::ZERO; jobs];
    }
    (0..jobs)
        .map(|i| {
            let slot = if kind == TraceKind::Bursty {
                i / BURST_SIZE * BURST_SIZE
            } else {
                i
            };
            Duration::from_secs_f64(slot as f64 / rate)
        })
        .collect()
}

/// Replays one trace against a fresh service and measures it.
fn replay(
    cfg: &ExpConfig,
    g: &Arc<Csr>,
    kind: TraceKind,
    workers: usize,
    opts: &LoadgenOptions,
) -> TraceResult {
    let svc = Service::start(ServiceConfig {
        num_workers: workers,
        // Sized to the trace: this measurement is about throughput, not
        // admission control, so nothing should be shed.
        queue_capacity: opts.jobs.max(16),
        ..ServiceConfig::default()
    });
    let schedule = arrivals(kind, opts.jobs, opts.rate);
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(opts.jobs);
    let mut rejected = 0u64;
    for (i, due) in schedule.iter().enumerate() {
        let now = t0.elapsed();
        if *due > now {
            std::thread::sleep(*due - now);
        }
        match svc.submit(JobRequest::new(Arc::clone(g), spec_for(cfg, kind, i))) {
            Ok(h) => handles.push(h),
            Err(_) => rejected += 1,
        }
    }
    let mut ok = 0u64;
    for h in &handles {
        if h.wait().is_ok() {
            ok += 1;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = svc.shutdown();
    TraceResult {
        trace: kind.name(),
        workers,
        jobs: opts.jobs,
        rate: opts.rate,
        wall_s,
        throughput: ok as f64 / wall_s,
        executions: stats.executions,
        cache_hits: stats.cache_hits,
        coalesced: stats.coalesced,
        rejected,
        p50_ms: stats.p50_ms,
        p95_ms: stats.p95_ms,
        p99_ms: stats.p99_ms,
    }
}

/// The workload graph every trace colors.
fn workload(cfg: &ExpConfig) -> Arc<Csr> {
    Arc::new(gen::rmat(RmatParams::erdos_renyi(cfg.scale, 20), 0xE5))
}

/// Runs the measurement (or the `--smoke` checks) and renders the report.
pub fn run(cfg: &ExpConfig, opts: &LoadgenOptions) -> String {
    if opts.smoke {
        return smoke(cfg, opts);
    }
    let g = workload(cfg);
    let cells: Vec<(TraceKind, usize)> = match opts.trace {
        Some(kind) => vec![(kind, opts.workers)],
        None => {
            let mut workers = vec![1usize];
            if opts.workers > 1 {
                workers.push(opts.workers);
            }
            let mut cells = Vec::new();
            for kind in [TraceKind::Unique, TraceKind::Duplicate] {
                for &w in &workers {
                    cells.push((kind, w));
                }
            }
            cells
        }
    };

    let mut table = Table::new(vec![
        "trace",
        "workers",
        "jobs",
        "thru (jobs/s)",
        "p50 ms",
        "p99 ms",
        "cold",
        "cache+coal",
        "vs unique w1",
    ]);
    let mut results: Vec<TraceResult> = Vec::new();
    let mut baseline: Option<f64> = None;
    for (kind, workers) in cells {
        let r = replay(cfg, &g, kind, workers, opts);
        if baseline.is_none() {
            baseline = Some(r.throughput);
        }
        let rel = r.throughput / baseline.unwrap();
        table.row(vec![
            r.trace.to_string(),
            r.workers.to_string(),
            r.jobs.to_string(),
            f(r.throughput, 1),
            f(r.p50_ms, 2),
            f(r.p99_ms, 2),
            r.executions.to_string(),
            (r.cache_hits + r.coalesced).to_string(),
            speedup(rel),
        ]);
        results.push(r);
    }
    maybe_write_json(cfg.json.as_deref(), &results).expect("json write");

    let mut out = String::new();
    out.push_str(&format!(
        "loadgen — open-loop traces vs the coloring service\n\
         workload: rmat-er scale {} ({} vertices, {} edges), scheme T-base, backend {}\n\
         rate: {}\n\n",
        cfg.scale,
        g.num_vertices(),
        g.num_edges(),
        cfg.backend,
        if opts.rate > 0.0 {
            format!("{} jobs/s (open loop)", opts.rate)
        } else {
            "unpaced (full trace submitted at once)".to_string()
        },
    ));
    out.push_str(&table.render());
    out
}

/// CI invariants, cheap enough for every pipeline run:
///
/// 1. **Zero rejections on an idle service** — a paced trace far below
///    capacity must shed nothing.
/// 2. **A duplicate-only replay is 100% cache hits** — after one warm
///    execution, every identical request is served from the cache, and
///    the service executes exactly once.
fn smoke(cfg: &ExpConfig, opts: &LoadgenOptions) -> String {
    let g = workload(cfg);
    let jobs = opts.jobs.min(32);

    // 1: idle service, sequential waits — every submission must land.
    let svc = Service::start(ServiceConfig {
        num_workers: opts.workers.max(1),
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    for i in 0..jobs {
        let h = svc
            .submit(JobRequest::new(
                Arc::clone(&g),
                spec_for(cfg, TraceKind::Unique, i),
            ))
            .unwrap_or_else(|r| panic!("smoke: idle service rejected job {i}: {r}"));
        h.wait()
            .unwrap_or_else(|e| panic!("smoke: job {i} failed: {e}"));
    }
    let idle = svc.shutdown();
    assert_eq!(
        idle.rejected_queue_full + idle.rejected_too_large,
        0,
        "smoke: idle service rejected submissions"
    );

    // 2: duplicate-only replay — one cold run, then all cache hits.
    let svc = Service::start(ServiceConfig {
        num_workers: opts.workers.max(1),
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    let spec = spec_for(cfg, TraceKind::Unique, 0);
    svc.submit(JobRequest::new(Arc::clone(&g), spec.clone()))
        .expect("smoke: warm submission rejected")
        .wait()
        .expect("smoke: warm run failed");
    for i in 0..jobs {
        let r = svc
            .submit(JobRequest::new(Arc::clone(&g), spec.clone()))
            .unwrap_or_else(|r| panic!("smoke: duplicate {i} rejected: {r}"))
            .wait()
            .unwrap_or_else(|e| panic!("smoke: duplicate {i} failed: {e}"));
        assert_eq!(
            r.source,
            ResultSource::CacheHit,
            "smoke: duplicate {i} missed the cache"
        );
    }
    let dup = svc.shutdown();
    assert_eq!(dup.executions, 1, "smoke: duplicate replay re-executed");
    assert_eq!(
        dup.cache_hits, jobs as u64,
        "smoke: duplicate replay not 100% cache hits"
    );

    format!(
        "loadgen --smoke OK: {jobs} idle submissions, 0 rejections; \
         duplicate-only replay 100% cache hits ({} hits, 1 execution)\n",
        dup.cache_hits
    )
}

//! Table I: the benchmark-graph suite and its degree statistics, printed
//! side by side with the paper's published values.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, Table};

use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    vertices: usize,
    edges: usize,
    min_deg: usize,
    max_deg: usize,
    avg_deg: f64,
    variance: f64,
    symmetric: bool,
    paper_vertices: usize,
    paper_edges: usize,
    paper_avg_deg: f64,
    paper_variance: f64,
}

/// Runs the Table I experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let suite = cfg.suite();
    let mut table = Table::new(vec![
        "graph",
        "vertices",
        "edges",
        "min",
        "max",
        "avg",
        "variance",
        "sym",
        "| paper n",
        "paper m",
        "paper avg",
        "paper var",
    ]);
    let mut rows = Vec::new();
    for e in &suite {
        let s = e.stats();
        table.row(vec![
            e.name.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.min_degree.to_string(),
            s.max_degree.to_string(),
            f(s.avg_degree, 2),
            f(s.variance, 2),
            if s.symmetric { "yes" } else { "no" }.to_string(),
            e.paper.vertices.to_string(),
            e.paper.edges.to_string(),
            f(e.paper.avg_deg, 2),
            f(e.paper.variance, 2),
        ]);
        rows.push(Row {
            graph: e.name.to_string(),
            vertices: s.num_vertices,
            edges: s.num_edges,
            min_deg: s.min_degree,
            max_deg: s.max_degree,
            avg_deg: s.avg_degree,
            variance: s.variance,
            symmetric: s.symmetric,
            paper_vertices: e.paper.vertices,
            paper_edges: e.paper.edges,
            paper_avg_deg: e.paper.avg_deg,
            paper_variance: e.paper.variance,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Table I — benchmark suite at scale {} (paper scale = 20).\n\
         UF matrices are structural stand-ins; paper counts include matrix\n\
         diagonals, our graphs are the (self-loop-free) adjacencies.\n\n{}",
        cfg.scale,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_all_six_graphs() {
        let cfg = ExpConfig {
            scale: 10,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for name in [
            "rmat-er",
            "rmat-g",
            "thermal2",
            "atmosmodd",
            "Hamrle3",
            "G3_circuit",
        ] {
            assert!(out.contains(name), "missing {name} in report:\n{out}");
        }
    }
}

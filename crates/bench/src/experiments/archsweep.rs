//! Architecture sensitivity study (beyond the paper's figures, grounded in
//! its §III-C): the paper's `__ldg` optimization exists *because* Kepler
//! stopped caching plain global loads in L1. On a Fermi-class device,
//! where plain loads go through L1 anyway, the ldg variant should buy
//! nothing — this experiment runs the proposed schemes on both simulated
//! generations and shows exactly that.

use super::ExpConfig;
use crate::report::{maybe_write_json, speedup, Table};

use gcol_core::Scheme;
use gcol_simt::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    kepler_ldg_gain_topo: f64,
    fermi_ldg_gain_topo: f64,
    kepler_ldg_gain_data: f64,
    fermi_ldg_gain_data: f64,
    kepler_d_ms: f64,
    fermi_d_ms: f64,
}

/// Runs the Kepler-vs-Fermi sweep.
pub fn run(cfg: &ExpConfig) -> String {
    let kepler = Device::k20c();
    let fermi = Device::fermi_like();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    let mut table = Table::new(vec![
        "graph",
        "ldg gain T (Kepler)",
        "ldg gain T (Fermi)",
        "ldg gain D (Kepler)",
        "ldg gain D (Fermi)",
        "Fermi/Kepler D-ldg",
    ]);
    let mut rows = Vec::new();
    for e in &suite {
        let ms =
            |scheme: Scheme, dev: &Device| -> f64 { scheme.color(&e.graph, dev, &opts).total_ms() };
        let k_t = ms(Scheme::TopoBase, &kepler) / ms(Scheme::TopoLdg, &kepler);
        let f_t = ms(Scheme::TopoBase, &fermi) / ms(Scheme::TopoLdg, &fermi);
        let k_d = ms(Scheme::DataBase, &kepler) / ms(Scheme::DataLdg, &kepler);
        let f_d = ms(Scheme::DataBase, &fermi) / ms(Scheme::DataLdg, &fermi);
        let k_dms = ms(Scheme::DataLdg, &kepler);
        let f_dms = ms(Scheme::DataLdg, &fermi);
        table.row(vec![
            e.name.to_string(),
            speedup(k_t),
            speedup(f_t),
            speedup(k_d),
            speedup(f_d),
            speedup(f_dms / k_dms),
        ]);
        rows.push(Row {
            graph: e.name.to_string(),
            kepler_ldg_gain_topo: k_t,
            fermi_ldg_gain_topo: f_t,
            kepler_ldg_gain_data: k_d,
            fermi_ldg_gain_data: f_d,
            kepler_d_ms: k_dms,
            fermi_d_ms: f_dms,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Architecture sweep — why __ldg is a *Kepler* optimization\n\
         (§III-C): on Fermi, plain loads already ride the L1, so the ldg\n\
         gain should collapse toward 1.00x there, and the slower memory\n\
         system makes everything take longer.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn ldg_gain_collapses_on_fermi() {
        let cfg = ExpConfig {
            scale: 11,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("Fermi"), "{out}");
    }
}

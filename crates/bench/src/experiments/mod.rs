//! One module per table/figure of the paper's evaluation (§IV), plus a
//! CPU-model calibration check. Each experiment renders a text report with
//! paper-expected values alongside the measured ones, and can dump JSON.

pub mod ablation;
pub mod archsweep;
pub mod calibrate;
pub mod convergence;
pub mod fig1;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hashsweep;
pub mod incremental;
pub mod loadgen;
pub mod planner;
pub mod planner_calibrate;
pub mod profile;
pub mod quality;
pub mod relabel;
pub mod sanitize;
pub mod scaling;
pub mod shardscale;
pub mod table1;
pub mod variance;

use crate::suite::{build_suite, SuiteEntry};
use gcol_core::{BackendKind, ColorOptions, ExchangeKind, Scheme, SchemeChoice};
use gcol_plan::Slo;
use gcol_simt::{Device, ExecMode};
use serde::Serialize;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// log2-equivalent suite scale; the paper's runs correspond to 20.
    pub scale: u32,
    /// Thread block size for GPU schemes (paper default 128).
    pub block_size: u32,
    /// Simulator execution mode.
    pub exec_mode: ExecMode,
    /// Execution backend: the timing simulator (default) or native rayon.
    pub backend: BackendKind,
    /// Device count for the GPU schemes (1 = the single-device driver;
    /// more shards the graph across modeled devices).
    pub shards: usize,
    /// Ghost-frontier wire encoding for sharded runs. `None` means "not
    /// pinned": experiments that A/B the encodings (shardscale) sweep
    /// both; everything else uses the library default.
    pub exchange: Option<ExchangeKind>,
    /// Run the experiment's CI invariant checks instead of (or on top of)
    /// the full report. Only shardscale honors this today.
    pub smoke: bool,
    /// Path to a real graph file (`--graph`). When set, experiments run
    /// on this graph instead of the generated Table I suite: suite-wide
    /// experiments shrink to a one-entry suite, workload experiments
    /// (shardscale, incremental, profile, hashsweep, variance) swap
    /// their generated graph for the file.
    pub graph: Option<String>,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional path for the `sanitize` experiment's structured findings
    /// report (`--sanitize-json`): the full [`gcol_simt::SanitizerReport`]
    /// per (scheme, graph, shards) run, for diffing against the
    /// checked-in expected-findings baseline.
    pub sanitize_json: Option<String>,
    /// Scheme selection (`--scheme`): a fixed scheme, or `auto` to let
    /// the planner pick per graph. `None` keeps each experiment's own
    /// default set. Only `profile` honors this today.
    pub scheme: Option<SchemeChoice>,
    /// Planner objective (`--slo`) used wherever `--scheme auto` (or the
    /// planner experiment) resolves a plan. `None` means the planner
    /// default for `profile`, and "report every SLO" for `planner`.
    pub slo: Option<Slo>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 15,
            block_size: 128,
            exec_mode: ExecMode::Deterministic,
            backend: BackendKind::Simt,
            shards: 1,
            exchange: None,
            smoke: false,
            graph: None,
            json: None,
            sanitize_json: None,
            scheme: None,
            slo: None,
        }
    }
}

impl ExpConfig {
    /// The graphs an experiment iterates: the `--graph` file as a
    /// one-entry suite when set, the six Table I graphs otherwise.
    ///
    /// Panics with the typed ingest error's message if the file fails to
    /// load — the CLI validates the path up front, so reaching the panic
    /// means an embedding skipped that check.
    pub fn suite(&self) -> Vec<SuiteEntry> {
        match self.graph_override() {
            Some(entry) => vec![entry],
            None => build_suite(self.scale),
        }
    }

    /// The `--graph` file as a single suite entry, if one was given.
    /// Same panic contract as [`ExpConfig::suite`].
    pub fn graph_override(&self) -> Option<SuiteEntry> {
        self.graph.as_deref().map(|path| {
            crate::suite::load_entry(path).unwrap_or_else(|e| panic!("--graph {path}: {e}"))
        })
    }

    /// Coloring options derived from this configuration.
    pub fn color_options(&self) -> ColorOptions {
        ColorOptions {
            block_size: self.block_size,
            exec_mode: self.exec_mode,
            backend: self.backend,
            num_shards: self.shards,
            exchange: self.exchange.unwrap_or_default(),
            ..ColorOptions::default()
        }
    }
}

/// Result of one scheme on one graph.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeRun {
    /// Which scheme.
    pub scheme: Scheme,
    /// Colors used.
    pub num_colors: usize,
    /// Rounds/sweeps executed.
    pub iterations: usize,
    /// Modeled milliseconds.
    pub ms: f64,
    /// Speedup over the sequential baseline of the same graph.
    pub speedup: f64,
}

/// All schemes on one graph.
#[derive(Debug, Clone, Serialize)]
pub struct GraphResults {
    /// Graph name (Table I).
    pub graph: String,
    /// Sequential baseline time in ms.
    pub seq_ms: f64,
    /// Per-scheme outcomes, in `Scheme::paper_seven()` order.
    pub runs: Vec<SchemeRun>,
}

/// Runs the paper's seven schemes over the whole suite. This is the
/// workhorse shared by Figs. 1, 6 and 7 (and reused by `all` so the suite
/// is colored once, not three times).
pub fn run_suite_all_schemes(cfg: &ExpConfig) -> Vec<GraphResults> {
    run_suite_schemes(cfg, &Scheme::paper_seven())
}

/// Runs a chosen set of schemes over the whole suite.
pub fn run_suite_schemes(cfg: &ExpConfig, schemes: &[Scheme]) -> Vec<GraphResults> {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    suite
        .iter()
        .map(|entry| run_graph_schemes(entry, &dev, &opts, schemes))
        .collect()
}

/// Runs the given schemes on one suite entry, verifying every coloring.
/// A scheme that returns a [`gcol_core::ColorError`] is reported to stderr
/// and skipped — one misconfigured or non-converging scheme no longer
/// aborts the whole experiment.
pub fn run_graph_schemes(
    entry: &SuiteEntry,
    dev: &Device,
    opts: &ColorOptions,
    schemes: &[Scheme],
) -> GraphResults {
    let seq_ms = Scheme::Sequential.color(&entry.graph, dev, opts).total_ms();
    let runs = schemes
        .iter()
        .filter_map(|&scheme| {
            let r = match scheme.try_color(&entry.graph, dev, opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: {} on {} skipped: {e}", scheme, entry.name);
                    return None;
                }
            };
            gcol_core::verify_coloring(&entry.graph, &r.colors).unwrap_or_else(|e| {
                panic!(
                    "{} produced an invalid coloring on {}: {e}",
                    scheme, entry.name
                )
            });
            let ms = r.total_ms();
            Some(SchemeRun {
                scheme,
                num_colors: r.num_colors,
                iterations: r.iterations,
                ms,
                speedup: seq_ms / ms,
            })
        })
        .collect();
    GraphResults {
        graph: entry.name.to_string(),
        seq_ms,
        runs,
    }
}

/// Geometric mean of positive values (how the paper averages speedups).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        assert!(x > 0.0, "geomean needs positive values");
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean([1.0, 0.0]);
    }

    #[test]
    fn small_scale_run_produces_consistent_results() {
        let cfg = ExpConfig {
            scale: 10,
            ..ExpConfig::default()
        };
        let results = run_suite_schemes(&cfg, &[Scheme::Sequential, Scheme::DataBase]);
        assert_eq!(results.len(), 6);
        for g in &results {
            assert_eq!(g.runs.len(), 2);
            // Sequential speedup over itself is exactly 1.
            assert!((g.runs[0].speedup - 1.0).abs() < 1e-9);
            assert!(g.runs[1].num_colors >= 1);
        }
    }
}

//! Fig. 7: runtime speedup of every scheme, normalized to the sequential
//! implementation. Expected shape: 3-step GM *below* 1× (≈0.66× average);
//! the topology-driven schemes ≈2× average; the data-driven schemes ≈3×
//! average and ≈1.5× over csrcolor; ldg helps a little on some graphs;
//! G3_circuit is the weak spot of the proposed schemes.

use super::{geomean, ExpConfig, GraphResults};
use crate::report::{maybe_write_json, speedup, Table};
use gcol_core::Scheme;

/// Renders the Fig. 7 report from precomputed runs.
pub fn render(results: &[GraphResults]) -> String {
    let schemes = Scheme::paper_seven();
    let mut header: Vec<String> = vec!["graph".into(), "seq ms".into()];
    header.extend(schemes.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(header);
    for g in results {
        let mut cells = vec![g.graph.clone(), format!("{:.2}", g.seq_ms)];
        cells.extend(g.runs.iter().map(|r| speedup(r.speedup)));
        table.row(cells);
    }
    // Geometric means per scheme across the suite.
    let mut mean_cells = vec!["geomean".to_string(), String::new()];
    for (i, _) in schemes.iter().enumerate() {
        let m = geomean(results.iter().map(|g| g.runs[i].speedup));
        mean_cells.push(speedup(m));
    }
    table.row(mean_cells);

    // Headline ratios the paper reports.
    let idx = |s: Scheme| schemes.iter().position(|&x| x == s).unwrap();
    let d_ldg = geomean(results.iter().map(|g| g.runs[idx(Scheme::DataLdg)].speedup));
    let csr = geomean(
        results
            .iter()
            .map(|g| g.runs[idx(Scheme::CsrColor)].speedup),
    );
    let threestep = geomean(
        results
            .iter()
            .map(|g| g.runs[idx(Scheme::ThreeStepGm)].speedup),
    );
    format!(
        "Fig. 7 — speedup over the sequential implementation (higher is\n\
         better). Expected shape: 3-step GM < 1x; T ≈ 2x; D ≈ 3x;\n\
         D vs csrcolor ≈ 1.5x.\n\n{}\n\
         headline: D-ldg/csrcolor = {:.2}x (paper ≈ 1.5x), \
         3-step GM = {:.2}x (paper ≈ 0.66x)\n",
        table.render(),
        d_ldg / csr,
        threestep,
    )
}

/// Runs the experiment standalone.
pub fn run(cfg: &ExpConfig) -> String {
    let results = super::run_suite_all_schemes(cfg);
    maybe_write_json(cfg.json.as_deref(), &results).expect("json write");
    render(&results)
}

//! Timeline profiler: runs one scheme on one suite graph and prints every
//! phase of the modeled execution — kernel launches with their occupancy,
//! traffic, cache and stall statistics, PCIe transfers, host work. The
//! `nvprof`-style view behind Figs. 3, 7 and 8.

use super::ExpConfig;
use crate::report::{f, Table};
use crate::suite::build_graph;
use gcol_core::{Scheme, SchemeChoice};
use gcol_graph::GraphProfile;
use gcol_plan::{Planner, Resources};
use gcol_simt::{Device, Phase};

/// Parses a scheme by its paper name (case-insensitive; see
/// [`Scheme::ALL`]).
pub fn parse_scheme(name: &str) -> Option<Scheme> {
    Scheme::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

/// Parses a scheme name or the literal `auto` (planner-resolved).
pub fn parse_choice(name: &str) -> Option<SchemeChoice> {
    name.parse().ok()
}

/// Runs the profiler for `(graph, scheme)`. A `--graph` file overrides
/// the suite-graph name; `--scheme auto` resolves the scheme (and
/// backend/shards) through the planner and reports the plan it picked.
pub fn run(cfg: &ExpConfig, graph: &str, choice: SchemeChoice) -> String {
    let (graph, g) = match cfg.graph_override() {
        Some(e) => (e.name, e.graph),
        None => (graph.to_string(), build_graph(graph, cfg.scale)),
    };
    let graph = graph.as_str();
    let dev = Device::k20c();
    let mut opts = cfg.color_options();
    let mut plan_line = String::new();
    let scheme = match choice.fixed() {
        Some(scheme) => scheme,
        None => {
            let profile = GraphProfile::extract(&g);
            let slo = cfg.slo.unwrap_or_default();
            let plan = Planner::new().plan(&profile, slo, &Resources::from_options(&opts));
            plan.apply(&mut opts);
            plan_line = format!(
                "auto plan (slo {}): scheme {}, backend {:?}, {} shard(s) — \
                 predicted {:.3} ms, {:.1} colors\n",
                slo,
                plan.scheme,
                plan.backend,
                plan.num_shards,
                plan.predicted_ms,
                plan.predicted_colors
            );
            plan.scheme
        }
    };
    let r = scheme.color(&g, &dev, &opts);
    gcol_core::verify_coloring(&g, &r.colors).expect("invalid coloring");

    let mut table = Table::new(vec![
        "phase",
        "ms",
        "grid",
        "occ %",
        "instr",
        "txns",
        "KB dram",
        "l2 hit%",
        "ro hit%",
        "atomics",
        "simd%",
        "mem stall%",
    ]);
    for p in &r.profile.phases {
        match p {
            Phase::Kernel(k) => {
                let l2_total = k.l2_hits + k.l2_misses;
                let ro_total = k.ro_hits + k.ro_misses;
                table.row(vec![
                    k.name.clone(),
                    f(k.time_ms, 4),
                    k.grid.to_string(),
                    f(k.occupancy.fraction * 100.0, 0),
                    k.instructions.to_string(),
                    k.mem_transactions.to_string(),
                    f(k.dram_bytes as f64 / 1024.0, 0),
                    if l2_total > 0 {
                        f(k.l2_hits as f64 / l2_total as f64 * 100.0, 0)
                    } else {
                        "-".into()
                    },
                    if ro_total > 0 {
                        f(k.ro_hits as f64 / ro_total as f64 * 100.0, 0)
                    } else {
                        "-".into()
                    },
                    k.atomics.to_string(),
                    f(k.simd_efficiency * 100.0, 0),
                    f(k.stalls.memory_dependency * 100.0, 0),
                ]);
            }
            Phase::Transfer { label, bytes, ms } => {
                table.row(vec![
                    format!("[pcie] {label}"),
                    f(*ms, 4),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    f(*bytes as f64 / 1024.0, 0),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Phase::Host { label, ms } => {
                table.row(vec![
                    format!("[host] {label}"),
                    f(*ms, 4),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    format!(
        "{}profile: {} on {} (scale {}) — {} colors, {} iterations, \
         total {:.3} ms\n\n{}",
        plan_line,
        scheme,
        graph,
        cfg.scale,
        r.num_colors,
        r.iterations,
        r.total_ms(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scheme_names() {
        assert_eq!(parse_scheme("D-ldg"), Some(Scheme::DataLdg));
        assert_eq!(parse_scheme("csrcolor"), Some(Scheme::CsrColor));
        assert_eq!(parse_scheme("nope"), None);
        assert_eq!(parse_choice("auto"), Some(SchemeChoice::Auto));
        assert_eq!(
            parse_choice("D-ldg"),
            Some(SchemeChoice::Fixed(Scheme::DataLdg))
        );
        assert_eq!(parse_choice("nope"), None);
    }

    #[test]
    fn profiles_a_small_run() {
        let cfg = ExpConfig {
            scale: 10,
            ..ExpConfig::default()
        };
        let out = run(&cfg, "rmat-er", Scheme::DataBase.into());
        assert!(out.contains("data-color"));
        assert!(out.contains("detect-compact"));
    }

    #[test]
    fn profiles_an_auto_plan() {
        let cfg = ExpConfig {
            scale: 10,
            ..ExpConfig::default()
        };
        let out = run(&cfg, "rmat-g", SchemeChoice::Auto);
        assert!(out.contains("auto plan (slo fastest-wall)"), "{out}");
        assert!(out.contains("profile: "), "{out}");
    }
}

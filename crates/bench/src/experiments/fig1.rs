//! Fig. 1 (motivation): the two pre-existing GPU implementations — 3-step
//! GM and csrcolor — against the sequential baseline. Expected shape:
//! (a) 3-step GM slower than sequential while csrcolor gets real speedup;
//! (b) 3-step GM's colors ≈ sequential while csrcolor's balloon.

use super::{ExpConfig, GraphResults};
use crate::report::{maybe_write_json, speedup, Table};
use gcol_core::Scheme;

/// Renders the Fig. 1 report from precomputed runs.
pub fn render(results: &[GraphResults]) -> String {
    let mut table = Table::new(vec![
        "graph",
        "3-step GM speedup",
        "csrcolor speedup",
        "seq colors",
        "3-step GM colors",
        "csrcolor colors",
    ]);
    for g in results {
        let find = |s: Scheme| g.runs.iter().find(|r| r.scheme == s).unwrap();
        let seq = find(Scheme::Sequential);
        let ts = find(Scheme::ThreeStepGm);
        let csr = find(Scheme::CsrColor);
        table.row(vec![
            g.graph.clone(),
            speedup(ts.speedup),
            speedup(csr.speedup),
            seq.num_colors.to_string(),
            ts.num_colors.to_string(),
            csr.num_colors.to_string(),
        ]);
    }
    format!(
        "Fig. 1 — the motivation: existing GPU implementations.\n\
         Expected shape: (a) 3-step GM < 1x, csrcolor > 1x;\n\
         (b) 3-step GM colors ≈ sequential, csrcolor several times more.\n\n{}",
        table.render()
    )
}

/// Runs the experiment standalone.
pub fn run(cfg: &ExpConfig) -> String {
    let results = super::run_suite_schemes(
        cfg,
        &[Scheme::Sequential, Scheme::ThreeStepGm, Scheme::CsrColor],
    );
    maybe_write_json(cfg.json.as_deref(), &results).expect("json write");
    render(&results)
}

//! Launch-sanitizer audit: every GPU scheme, single-device and sharded
//! (P = 2, ghost-exchange rounds included), with each kernel launch run
//! under shadow-memory analysis — race detection, `ldg`-coherence,
//! bounds and read-before-init checks.
//!
//! The expected steady state is one finding class and one only: the
//! paper's benign `st_warp` speculation race (adjacent vertices in one
//! launch tentatively writing/reading `color[]`; conflicts are detected
//! and repaired by construction). Any *harmful* finding — a plain-store
//! race, an `ldg` of a buffer written in the same launch, an OOB access,
//! an uninitialized read, mixed atomic/plain traffic — aborts the run
//! with the full report, so wiring this into CI turns the sanitizer
//! into a regression gate for every kernel in the repo.

use super::ExpConfig;
use crate::report::{maybe_write_json, Table};
use gcol_core::{color_sanitized, Scheme};
use gcol_graph::gen::{self, RmatParams, StencilKind};
use gcol_graph::Csr;
use gcol_simt::{Device, SanitizerReport};
use serde::Serialize;

/// Shard counts the audit covers: the single-device driver plus the
/// sharded driver with its ghost-frontier exchange traffic.
pub const SHARD_COUNTS: [usize; 2] = [1, 2];

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    graph: &'static str,
    shards: usize,
    benign: u64,
    harmful: u64,
}

/// One audited (scheme, graph, shards) run with its full sanitizer
/// report — the unit of the `--sanitize-json` document and of the
/// checked-in expected-findings baseline
/// (`crates/bench/tests/data/sanitize_baseline.json`).
#[derive(Serialize)]
pub struct AuditEntry {
    /// Scheme name as printed in the tables (e.g. `D-ldg`).
    pub scheme: &'static str,
    /// Audit graph name (`rmat-er`, `grid`).
    pub graph: &'static str,
    /// Device count (1 = single-device driver).
    pub shards: usize,
    /// The run's cumulative deduplicated findings.
    pub report: SanitizerReport,
}

impl AuditEntry {
    /// The diff-stable projection of one finding: class, kernel and
    /// buffer, but not the representative word/thread pair (which is an
    /// arbitrary member of the deduplicated set) or the occurrence count
    /// (which scales with the graph). This is what the CI baseline pins.
    pub fn finding_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .report
            .findings
            .iter()
            .map(|f| format!("{:?}/{}/{}", f.kind, f.kernel, f.buffer))
            .collect();
        keys.sort();
        keys
    }
}

fn graphs(cfg: &ExpConfig) -> Vec<(&'static str, Csr)> {
    // The sanitizer checks per-launch invariants, not throughput; small
    // graphs already exercise every kernel and branch, so the audit caps
    // its own scale to stay cheap even inside `all`.
    let scale = cfg.scale.min(12);
    let side = 1usize << (scale / 2);
    vec![
        (
            "rmat-er",
            gen::rmat(RmatParams::erdos_renyi(scale, 16), 0x5A),
        ),
        ("grid", gen::grid2d(side, side, StencilKind::NinePoint)),
    ]
}

/// Runs every (scheme, graph, shards) combination under the sanitizer
/// and returns the full per-run reports. Panics on a coloring failure
/// or an improper result, but leaves harmful-finding policy to the
/// caller — [`run`] aborts on any, the baseline test diffs the set.
pub fn audit(cfg: &ExpConfig) -> Vec<AuditEntry> {
    let dev = Device::k20c();
    let mut entries = Vec::new();
    for scheme in Scheme::GPU {
        for (name, g) in graphs(cfg) {
            for p in SHARD_COUNTS {
                let opts = cfg.color_options().with_shards(p);
                let (coloring, report) = color_sanitized(scheme, &g, &dev, &opts)
                    .unwrap_or_else(|e| panic!("{scheme}/{name} P={p}: {e}"));
                gcol_core::verify_coloring(&g, &coloring.colors)
                    .unwrap_or_else(|e| panic!("{scheme}/{name} P={p} improper: {e}"));
                entries.push(AuditEntry {
                    scheme: scheme.name(),
                    graph: name,
                    shards: p,
                    report,
                });
            }
        }
    }
    entries
}

/// Runs the audit. Panics with the offending report if any scheme
/// produces a harmful finding, so a CI invocation fails loudly.
/// `--sanitize-json` additionally writes the full structured findings
/// (every [`AuditEntry`] with its complete report) for diffing against
/// the checked-in baseline.
pub fn run(cfg: &ExpConfig) -> String {
    let entries = audit(cfg);
    let mut table = Table::new(vec![
        "scheme".to_string(),
        "graph".to_string(),
        "P".to_string(),
        "benign (st_warp)".to_string(),
        "harmful".to_string(),
    ]);
    let mut rows = Vec::new();
    let mut bad = Vec::new();
    for e in &entries {
        let benign: u64 = e.report.benign().map(|f| f.occurrences).sum();
        let harmful: u64 = e.report.harmful().map(|f| f.occurrences).sum();
        table.row(vec![
            e.scheme.to_string(),
            e.graph.to_string(),
            e.shards.to_string(),
            benign.to_string(),
            harmful.to_string(),
        ]);
        rows.push(Row {
            scheme: e.scheme,
            graph: e.graph,
            shards: e.shards,
            benign,
            harmful,
        });
        if harmful > 0 {
            bad.push(format!(
                "{}/{} P={}:\n{}",
                e.scheme, e.graph, e.shards, e.report
            ));
        }
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    maybe_write_json(cfg.sanitize_json.as_deref(), &entries).expect("sanitize json write");
    assert!(
        bad.is_empty(),
        "sanitizer found harmful launches:\n{}",
        bad.join("\n")
    );
    format!(
        "Kernel launch sanitizer — every GPU scheme, P ∈ {{1, 2}}.\n\
         Shadow-memory analysis of each launch: data races, ldg-coherence,\n\
         bounds, read-before-init. All runs are clean; the benign column\n\
         counts occurrences of the documented st_warp speculation race\n\
         (the tentative-coloring write the schemes repair by design).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_is_clean_and_covers_every_scheme() {
        let cfg = ExpConfig {
            scale: 8,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for scheme in Scheme::GPU {
            assert!(out.contains(scheme.name()), "missing {scheme}");
        }
        assert!(out.contains("clean"));
    }
}

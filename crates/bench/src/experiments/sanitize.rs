//! Launch-sanitizer audit: every GPU scheme, single-device and sharded
//! (P = 2, ghost-exchange rounds included), with each kernel launch run
//! under shadow-memory analysis — race detection, `ldg`-coherence,
//! bounds and read-before-init checks.
//!
//! The expected steady state is one finding class and one only: the
//! paper's benign `st_warp` speculation race (adjacent vertices in one
//! launch tentatively writing/reading `color[]`; conflicts are detected
//! and repaired by construction). Any *harmful* finding — a plain-store
//! race, an `ldg` of a buffer written in the same launch, an OOB access,
//! an uninitialized read, mixed atomic/plain traffic — aborts the run
//! with the full report, so wiring this into CI turns the sanitizer
//! into a regression gate for every kernel in the repo.

use super::ExpConfig;
use crate::report::{maybe_write_json, Table};
use gcol_core::{color_sanitized, Scheme};
use gcol_graph::gen::{self, RmatParams, StencilKind};
use gcol_graph::Csr;
use gcol_simt::Device;
use serde::Serialize;

/// Shard counts the audit covers: the single-device driver plus the
/// sharded driver with its ghost-frontier exchange traffic.
pub const SHARD_COUNTS: [usize; 2] = [1, 2];

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    graph: &'static str,
    shards: usize,
    benign: u64,
    harmful: u64,
}

fn graphs(cfg: &ExpConfig) -> Vec<(&'static str, Csr)> {
    // The sanitizer checks per-launch invariants, not throughput; small
    // graphs already exercise every kernel and branch, so the audit caps
    // its own scale to stay cheap even inside `all`.
    let scale = cfg.scale.min(12);
    let side = 1usize << (scale / 2);
    vec![
        (
            "rmat-er",
            gen::rmat(RmatParams::erdos_renyi(scale, 16), 0x5A),
        ),
        ("grid", gen::grid2d(side, side, StencilKind::NinePoint)),
    ]
}

/// Runs the audit. Panics with the offending report if any scheme
/// produces a harmful finding, so a CI invocation fails loudly.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let mut table = Table::new(vec![
        "scheme".to_string(),
        "graph".to_string(),
        "P".to_string(),
        "benign (st_warp)".to_string(),
        "harmful".to_string(),
    ]);
    let mut rows = Vec::new();
    let mut bad = Vec::new();
    for scheme in Scheme::GPU {
        for (name, g) in graphs(cfg) {
            for p in SHARD_COUNTS {
                let opts = cfg.color_options().with_shards(p);
                let (coloring, report) = color_sanitized(scheme, &g, &dev, &opts)
                    .unwrap_or_else(|e| panic!("{scheme}/{name} P={p}: {e}"));
                gcol_core::verify_coloring(&g, &coloring.colors)
                    .unwrap_or_else(|e| panic!("{scheme}/{name} P={p} improper: {e}"));
                let benign: u64 = report.benign().map(|f| f.occurrences).sum();
                let harmful: u64 = report.harmful().map(|f| f.occurrences).sum();
                table.row(vec![
                    scheme.name().to_string(),
                    name.to_string(),
                    p.to_string(),
                    benign.to_string(),
                    harmful.to_string(),
                ]);
                rows.push(Row {
                    scheme: scheme.name(),
                    graph: name,
                    shards: p,
                    benign,
                    harmful,
                });
                if harmful > 0 {
                    bad.push(format!("{scheme}/{name} P={p}:\n{report}"));
                }
            }
        }
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    assert!(
        bad.is_empty(),
        "sanitizer found harmful launches:\n{}",
        bad.join("\n")
    );
    format!(
        "Kernel launch sanitizer — every GPU scheme, P ∈ {{1, 2}}.\n\
         Shadow-memory analysis of each launch: data races, ldg-coherence,\n\
         bounds, read-before-init. All runs are clean; the benign column\n\
         counts occurrences of the documented st_warp speculation race\n\
         (the tentative-coloring write the schemes repair by design).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_is_clean_and_covers_every_scheme() {
        let cfg = ExpConfig {
            scale: 8,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        for scheme in Scheme::GPU {
            assert!(out.contains(scheme.name()), "missing {scheme}");
        }
        assert!(out.contains("clean"));
    }
}

//! Scale-sensitivity study: how the headline speedups move with graph
//! size. The paper fixed one size (scale 20); this reproduction usually
//! runs smaller, so the trend matters for interpreting EXPERIMENTS.md —
//! GPU speedups grow with scale (more parallelism to hide latency with,
//! better amortized launch overhead) while the quality picture is flat.

use super::{geomean, ExpConfig};
use crate::report::{maybe_write_json, speedup, Table};
use crate::suite::build_suite;
use gcol_core::Scheme;
use gcol_simt::Device;
use serde::Serialize;

/// Scales to sweep (log2-equivalent suite sizes).
pub const SCALES: [u32; 4] = [12, 13, 14, 15];

#[derive(Serialize)]
struct Row {
    scale: u32,
    d_ldg_speedup: f64,
    csrcolor_speedup: f64,
    d_over_csr: f64,
    csr_color_ratio: f64,
}

/// Runs the sweep; per scale: suite geomean speedups of D-ldg and
/// csrcolor, their ratio, and csrcolor's color inflation.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let mut table = Table::new(vec![
        "scale",
        "D-ldg",
        "csrcolor",
        "D/csr",
        "csr colors / seq colors",
    ]);
    let mut rows = Vec::new();
    for scale in SCALES {
        let suite = build_suite(scale);
        let mut d_sp = Vec::new();
        let mut c_sp = Vec::new();
        let mut inflation = Vec::new();
        for e in &suite {
            let seq = Scheme::Sequential.color(&e.graph, &dev, &opts);
            let d = Scheme::DataLdg.color(&e.graph, &dev, &opts);
            let c = Scheme::CsrColor.color(&e.graph, &dev, &opts);
            gcol_core::verify_coloring(&e.graph, &d.colors).unwrap();
            gcol_core::verify_coloring(&e.graph, &c.colors).unwrap();
            d_sp.push(seq.total_ms() / d.total_ms());
            c_sp.push(seq.total_ms() / c.total_ms());
            inflation.push(c.num_colors as f64 / seq.num_colors.max(1) as f64);
        }
        let d = geomean(d_sp);
        let c = geomean(c_sp);
        let infl = geomean(inflation);
        table.row(vec![
            scale.to_string(),
            speedup(d),
            speedup(c),
            speedup(d / c),
            format!("{infl:.1}x"),
        ]);
        rows.push(Row {
            scale,
            d_ldg_speedup: d,
            csrcolor_speedup: c,
            d_over_csr: d / c,
            csr_color_ratio: infl,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Scale sweep — suite geomeans per size (paper scale = 20).\n\
         Expected trend: absolute speedups grow with scale; the D/csrcolor\n\
         ratio and the color-inflation ratio stay in the paper's band.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn scaling_report_renders_at_tiny_scales() {
        // Uses its own internal scale list; just confirm it runs end to
        // end at the small end (first entries dominate the runtime).
        let cfg = ExpConfig {
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("D/csr"));
        for s in SCALES {
            assert!(out.contains(&s.to_string()));
        }
    }
}

//! csrcolor hash-count sweep (beyond the paper's figures, grounded in its
//! §II-C): "assume N hash values are associated with each vertex … this
//! multi-hash method can generate 2N (maximal) independent sets at once".
//! More hashes ⇒ fewer sweeps but more per-edge hash work and *more
//! colors* (every independent set burns one). The sweep quantifies that
//! three-way trade.

use super::ExpConfig;
use crate::report::{f, maybe_write_json, Table};
use crate::suite::build_graph;
use gcol_core::{ColorOptions, Scheme};
use gcol_simt::Device;
use serde::Serialize;

/// Hash counts to sweep.
pub const HASH_COUNTS: [usize; 5] = [1, 2, 3, 4, 6];

#[derive(Serialize)]
struct Row {
    graph: String,
    num_hashes: usize,
    colors: usize,
    sweeps: usize,
    ms: f64,
}

/// Runs the sweep on the two R-MAT graphs (where csrcolor's behavior
/// differs most).
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let mut table = Table::new(vec!["graph", "N", "colors", "sweeps", "modeled ms"]);
    let mut rows = Vec::new();
    let workload: Vec<(String, _)> = match cfg.graph_override() {
        Some(e) => vec![(e.name, e.graph)],
        None => ["rmat-er", "rmat-g", "thermal2"]
            .into_iter()
            .map(|n| (n.to_string(), build_graph(n, cfg.scale)))
            .collect(),
    };
    for (name, g) in workload {
        let name = name.as_str();
        for &n in &HASH_COUNTS {
            let opts = ColorOptions {
                num_hashes: n,
                block_size: cfg.block_size,
                exec_mode: cfg.exec_mode,
                ..ColorOptions::default()
            };
            let r = Scheme::CsrColor.color(&g, &dev, &opts);
            gcol_core::verify_coloring(&g, &r.colors).unwrap();
            table.row(vec![
                name.to_string(),
                n.to_string(),
                r.num_colors.to_string(),
                r.iterations.to_string(),
                f(r.total_ms(), 3),
            ]);
            rows.push(Row {
                graph: name.to_string(),
                num_hashes: n,
                colors: r.num_colors,
                sweeps: r.iterations,
                ms: r.total_ms(),
            });
        }
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "csrcolor multi-hash sweep — 2N independent sets per sweep\n\
         (§II-C). Expected: sweeps fall as N grows; colors and per-sweep\n\
         hash work rise.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn sweep_shows_the_trade() {
        let cfg = ExpConfig {
            scale: 11,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("sweeps"));
    }
}

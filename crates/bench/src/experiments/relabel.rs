//! Locality-preprocessing ablation: the paper stores graphs "in the order
//! they are defined and do\[es\] not perform any preprocessing in order to
//! improve locality or load balance" (§III-C). This experiment measures
//! what a reverse Cuthill–McKee relabeling — the standard
//! bandwidth-reducing preprocessing — would have bought: CSR bandwidth
//! shrinks, neighbor color loads start hitting the caches, and the
//! latency-bound kernels speed up accordingly.

use super::ExpConfig;
use crate::report::{maybe_write_json, speedup, Table};

use gcol_core::Scheme;
use gcol_graph::relabel::{bandwidth, rcm_permutation, relabel};
use gcol_simt::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    bandwidth_before: usize,
    bandwidth_after: usize,
    d_ldg_natural_ms: f64,
    d_ldg_rcm_ms: f64,
    rcm_gain: f64,
    rounds_natural: usize,
    rounds_rcm: usize,
    colors_natural: usize,
    colors_rcm: usize,
}

/// Runs the RCM relabeling ablation with D-ldg.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    let mut table = Table::new(vec![
        "graph",
        "bandwidth before",
        "after RCM",
        "D-ldg gain",
        "rounds (nat/rcm)",
        "colors (nat/rcm)",
    ]);
    let mut rows = Vec::new();
    for e in &suite {
        let natural = Scheme::DataLdg.color(&e.graph, &dev, &opts);
        let perm = rcm_permutation(&e.graph);
        let relabeled = relabel(&e.graph, &perm);
        let rcm = Scheme::DataLdg.color(&relabeled, &dev, &opts);
        gcol_core::verify_coloring(&relabeled, &rcm.colors).unwrap();
        let gain = natural.total_ms() / rcm.total_ms();
        let (bw_before, bw_after) = (bandwidth(&e.graph), bandwidth(&relabeled));
        table.row(vec![
            e.name.to_string(),
            bw_before.to_string(),
            bw_after.to_string(),
            speedup(gain),
            format!("{}/{}", natural.iterations, rcm.iterations),
            format!("{}/{}", natural.num_colors, rcm.num_colors),
        ]);
        rows.push(Row {
            graph: e.name.to_string(),
            bandwidth_before: bw_before,
            bandwidth_after: bw_after,
            d_ldg_natural_ms: natural.total_ms(),
            d_ldg_rcm_ms: rcm.total_ms(),
            rcm_gain: gain,
            rounds_natural: natural.iterations,
            rounds_rcm: rcm.iterations,
            colors_natural: natural.num_colors,
            colors_rcm: rcm.num_colors,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "RCM relabeling ablation — the locality preprocessing §III-C\n\
         declines. Two mechanisms are at play: (a) bandwidth reduction\n\
         improves cache locality of the neighbor color loads, and (b) the\n\
         BFS reordering moves graph-adjacent vertices out of (or into)\n\
         shared warps, changing the speculative conflict rate and hence\n\
         the round count — compare the rounds column. Ordering also\n\
         shifts the first-fit color count slightly, as §IV notes for the\n\
         scheme variants themselves.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn relabel_experiment_runs() {
        let cfg = ExpConfig {
            scale: 10,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("bandwidth before"));
    }
}

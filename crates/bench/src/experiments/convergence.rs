//! Speculation convergence study (beyond the paper's figures, explaining
//! them): how fast the speculative rounds drain, per graph. The worklist
//! size of each data-driven round is recovered from the profile (the
//! detect-compact kernel's grid is ⌈len/block⌉), showing why the stencil
//! graphs — whose neighbors share warps and re-conflict — need many more
//! rounds than the R-MAT graphs, which in turn is exactly why the
//! data-driven scheme's work-efficiency matters most there (Fig. 7's
//! "much better … for thermal2, atmosmodd and G3_circuit").

use super::ExpConfig;
use crate::report::{maybe_write_json, Table};

use gcol_core::Scheme;
use gcol_simt::{Device, Phase};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    rounds: usize,
    colorings_per_round: Vec<u64>,
}

/// Runs D-base on the suite and tabulates per-round worklist sizes.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    let mut table = Table::new(vec!["graph", "rounds", "worklist per round (approx)"]);
    let mut rows = Vec::new();
    for e in &suite {
        let r = Scheme::DataBase.color(&e.graph, &dev, &opts);
        // data-color kernels process the worklist: grid * block bounds it.
        let sizes: Vec<u64> = r
            .profile
            .phases
            .iter()
            .filter_map(|p| match p {
                Phase::Kernel(k) if k.name.starts_with("data-color") => {
                    Some(k.grid as u64 * k.block as u64)
                }
                _ => None,
            })
            .collect();
        let rendered = sizes
            .iter()
            .map(|s| {
                let pct = *s as f64 / e.graph.num_vertices().max(1) as f64;
                if pct >= 0.995 {
                    "all".to_string()
                } else {
                    format!("{:.1}%", pct * 100.0)
                }
            })
            .collect::<Vec<_>>()
            .join(" → ");
        table.row(vec![e.name.to_string(), r.iterations.to_string(), rendered]);
        rows.push(Row {
            graph: e.name.to_string(),
            rounds: r.iterations,
            colorings_per_round: sizes,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Speculation convergence (D-base): per-round worklist sizes as a\n\
         fraction of the vertex set. Stencil/banded graphs re-conflict\n\
         inside warps and drain slowly; R-MAT graphs converge in 2–4\n\
         rounds.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn convergence_report_renders() {
        let cfg = ExpConfig {
            scale: 11,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("rounds"));
        assert!(out.contains("all"), "first round covers all vertices");
    }
}

//! Ablation studies for the design choices §III motivates:
//!
//! 1. **Atomic operation reduction** (Fig. 5): prefix-sum worklist
//!    compaction (D-base) vs per-thread atomic pushes (D-atomic).
//! 2. **Read-only data caching** (Fig. 4): ld vs ldg for both task
//!    mappings.
//! 3. **Task mapping**: topology-driven vs data-driven, isolating the
//!    work-efficiency argument — plus the edge-parallel detection variant
//!    (the §IV future-work item) against vertex-parallel detection.
//! 4. **Color balancing** (ref. \[19\]): post-process effect on class-size
//!    skew, at zero cost to the color count.

use super::{geomean, ExpConfig};
use crate::report::{f, maybe_write_json, Table};

use gcol_core::balance::balance_colors;
use gcol_core::Scheme;
use gcol_simt::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    d_base_ms: f64,
    d_atomic_ms: f64,
    atomic_penalty: f64,
    t_base_ms: f64,
    mapping_gain: f64,
    ldg_gain_topo: f64,
    ldg_gain_data: f64,
    edge_detect_gain: f64,
    balance_stddev_before: f64,
    balance_stddev_after: f64,
}

/// Runs all four ablations over the suite.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = Device::k20c();
    let opts = cfg.color_options();
    let suite = cfg.suite();
    let mut table = Table::new(vec![
        "graph",
        "atomic/prefix",
        "topo/data",
        "ldg gain (T)",
        "ldg gain (D)",
        "edge/vertex detect",
        "balance σ before→after",
    ]);
    let mut rows = Vec::new();
    let mut penalties = Vec::new();
    for e in &suite {
        let d_base = Scheme::DataBase.color(&e.graph, &dev, &opts);
        let d_atomic = Scheme::DataAtomic.color(&e.graph, &dev, &opts);
        let d_ldg = Scheme::DataLdg.color(&e.graph, &dev, &opts);
        let t_base = Scheme::TopoBase.color(&e.graph, &dev, &opts);
        let t_ldg = Scheme::TopoLdg.color(&e.graph, &dev, &opts);
        let t_edge = Scheme::TopoEdge.color(&e.graph, &dev, &opts);
        let atomic_penalty = d_atomic.total_ms() / d_base.total_ms();
        let mapping_gain = t_base.total_ms() / d_base.total_ms();
        let ldg_t = t_base.total_ms() / t_ldg.total_ms();
        let ldg_d = d_base.total_ms() / d_ldg.total_ms();
        let edge_gain = t_edge.total_ms() / t_ldg.total_ms();
        // Balance the D-base coloring.
        let mut colors = d_base.colors.clone();
        let outcome = balance_colors(&e.graph, &mut colors, d_base.num_colors, 4);
        gcol_core::verify_coloring(&e.graph, &colors).expect("balance broke it");
        penalties.push(atomic_penalty);
        table.row(vec![
            e.name.to_string(),
            format!("{atomic_penalty:.2}x"),
            format!("{mapping_gain:.2}x"),
            format!("{ldg_t:.2}x"),
            format!("{ldg_d:.2}x"),
            format!("{edge_gain:.2}x"),
            format!(
                "{} → {}",
                f(outcome.stddev_before, 0),
                f(outcome.stddev_after, 0)
            ),
        ]);
        rows.push(Row {
            graph: e.name.to_string(),
            d_base_ms: d_base.total_ms(),
            d_atomic_ms: d_atomic.total_ms(),
            atomic_penalty,
            t_base_ms: t_base.total_ms(),
            mapping_gain,
            ldg_gain_topo: ldg_t,
            ldg_gain_data: ldg_d,
            edge_detect_gain: edge_gain,
            balance_stddev_before: outcome.stddev_before,
            balance_stddev_after: outcome.stddev_after,
        });
    }
    maybe_write_json(cfg.json.as_deref(), &rows).expect("json write");
    format!(
        "Ablations of the paper's design choices (all ratios > 1 mean the\n\
         paper's choice wins).\n\
         atomic/prefix: per-thread-atomic worklists vs prefix-sum (§III-C);\n\
         topo/data: task-mapping work-efficiency; ldg gain: Fig. 4's\n\
         read-only cache; edge-detect: edge-parallel detection (the §IV\n\
         future-work item) vs vertex-parallel; balance: Gjertsen-style\n\
         class rebalancing.\n\n{}\n\
         geomean atomic-push penalty: {:.2}x\n",
        table.render(),
        geomean(penalties)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_simt::ExecMode;

    #[test]
    fn ablation_runs_at_small_scale() {
        let cfg = ExpConfig {
            scale: 10,
            exec_mode: ExecMode::Deterministic,
            ..ExpConfig::default()
        };
        let out = run(&cfg);
        assert!(out.contains("atomic/prefix"));
        assert!(out.contains("geomean atomic-push penalty"));
    }
}

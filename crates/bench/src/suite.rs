//! The benchmark suite of Table I.
//!
//! Two R-MAT graphs with the paper's exact parameters, plus structural
//! stand-ins for the four University-of-Florida matrices (generated to
//! match each graph's published structure class and degree profile; see
//! DESIGN.md for the substitution rationale). When the real `.mtx` files
//! are present in `$GCOL_SUITE_DIR`, they are loaded instead.
//!
//! All sizes scale with a log2 `scale` parameter: the paper's runs
//! correspond to `scale = 20` (rmat graphs of 2^20 vertices; the UF
//! stand-ins scale proportionally). Smaller scales keep the simulation
//! tractable on modest hosts while preserving every qualitative shape.

use gcol_graph::gen;
use gcol_graph::stats::{DegreeStats, GraphProfile};
use gcol_graph::Csr;
use serde::{Deserialize, Serialize};

/// The paper's published Table I row for a graph (for side-by-side
/// reporting).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperRow {
    /// Vertices.
    pub vertices: usize,
    /// Non-zero elements (stored directed edges).
    pub edges: usize,
    /// Minimum degree.
    pub min_deg: usize,
    /// Maximum degree.
    pub max_deg: usize,
    /// Average degree.
    pub avg_deg: f64,
    /// Degree variance.
    pub variance: f64,
    /// Symmetric positive definite?
    pub spd: bool,
    /// Application domain string from Table I.
    pub domain: &'static str,
}

impl PaperRow {
    /// A row built from a graph's own measured statistics — the shape
    /// used for user-supplied `--graph` files, where the "paper" columns
    /// are the file itself. Single source: [`DegreeStats::compute`], the
    /// same implementation `table1` and the planner profile run on.
    pub fn measured(s: &DegreeStats) -> Self {
        Self {
            vertices: s.num_vertices,
            edges: s.num_edges,
            min_deg: s.min_degree,
            max_deg: s.max_degree,
            avg_deg: s.avg_degree,
            variance: s.variance,
            spd: false,
            domain: "user file",
        }
    }
}

/// One suite entry: name, the paper's row, and the graph. Entries come
/// from the generated Table I suite ([`build_suite`]) or from a real
/// graph file on disk ([`load_entry`], the `--graph` path).
pub struct SuiteEntry {
    /// Graph name: the Table I name, or the loaded file's stem.
    pub name: String,
    /// Published Table I values (at the paper's full scale); for a
    /// loaded file, its own measured statistics.
    pub paper: PaperRow,
    /// The graph itself (at the requested scale).
    pub graph: Csr,
}

impl SuiteEntry {
    /// Degree statistics of the generated graph.
    pub fn stats(&self) -> DegreeStats {
        DegreeStats::compute(&self.graph)
    }

    /// The planner's single-pass feature vector for this graph.
    pub fn profile(&self) -> GraphProfile {
        GraphProfile::extract(&self.graph)
    }
}

/// Published Table I rows.
pub fn paper_rows() -> [(&'static str, PaperRow); 6] {
    [
        (
            "rmat-er",
            PaperRow {
                vertices: 1_048_576,
                edges: 20_971_268,
                min_deg: 2,
                max_deg: 59,
                avg_deg: 20.00,
                variance: 23.37,
                spd: false,
                domain: "Synthetic",
            },
        ),
        (
            "rmat-g",
            PaperRow {
                vertices: 1_048_576,
                edges: 20_964_268,
                min_deg: 0,
                max_deg: 899,
                avg_deg: 20.00,
                variance: 472.81,
                spd: false,
                domain: "Synthetic",
            },
        ),
        (
            "thermal2",
            PaperRow {
                vertices: 1_228_045,
                edges: 8_580_313,
                min_deg: 1,
                max_deg: 11,
                avg_deg: 6.99,
                variance: 0.66,
                spd: true,
                domain: "Thermal Simulation",
            },
        ),
        (
            "atmosmodd",
            PaperRow {
                vertices: 1_270_432,
                edges: 8_814_880,
                min_deg: 4,
                max_deg: 7,
                avg_deg: 6.94,
                variance: 0.06,
                spd: false,
                domain: "Atmospheric Model",
            },
        ),
        (
            "Hamrle3",
            PaperRow {
                vertices: 1_447_360,
                edges: 11_028_464,
                min_deg: 4,
                max_deg: 15,
                avg_deg: 7.62,
                variance: 7.21,
                spd: false,
                domain: "Circuit Simulation",
            },
        ),
        (
            "G3_circuit",
            PaperRow {
                vertices: 1_585_478,
                edges: 7_660_826,
                min_deg: 2,
                max_deg: 6,
                avg_deg: 4.83,
                variance: 0.41,
                spd: true,
                domain: "Circuit Simulation",
            },
        ),
    ]
}

/// Builds one suite graph at the given scale (paper scale = 20). Looks for
/// the real matrix in `$GCOL_SUITE_DIR/<name>.mtx` first when running at
/// full scale.
pub fn build_graph(name: &str, scale: u32) -> Csr {
    assert!((8..=22).contains(&scale), "scale out of supported range");
    if scale == 20 {
        if let Ok(dir) = std::env::var("GCOL_SUITE_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{name}.mtx"));
            if let Ok(f) = std::fs::File::open(&path) {
                let reader = std::io::BufReader::new(f);
                if let Ok(g) = gcol_graph::io::read_matrix_market(reader) {
                    return g;
                }
            }
        }
    }
    // Proportional scaling: paper sizes shrink by 2^(20 - scale).
    let shrink =
        |paper_n: usize| -> usize { (paper_n >> (20 - scale.min(20))) << scale.saturating_sub(20) };
    match name {
        "rmat-er" => gen::rmat(gen::RmatParams::erdos_renyi(scale, 20), 0xE5),
        "rmat-g" => gen::rmat(gen::RmatParams::skewed(scale, 20), 0x9E),
        "thermal2" => {
            let n = shrink(1_228_045);
            let side = (n as f64).sqrt().round() as usize;
            gen::mesh2d(side, side, 0.10, 0x7E)
        }
        "atmosmodd" => {
            let n = shrink(1_270_432);
            let side = (n as f64).cbrt().round() as usize;
            gen::grid3d(side, side, side)
        }
        "Hamrle3" => {
            let n = shrink(1_447_360);
            gen::circuit_graph(n, 3, 0.9, 0xA3)
        }
        "G3_circuit" => {
            let n = shrink(1_585_478);
            let side = (n as f64).sqrt().round() as usize;
            gen::grid2d(side, side, gen::StencilKind::FivePoint)
        }
        other => panic!("unknown suite graph {other:?}"),
    }
}

/// Builds the full six-graph suite at the given scale.
pub fn build_suite(scale: u32) -> Vec<SuiteEntry> {
    paper_rows()
        .into_iter()
        .map(|(name, paper)| SuiteEntry {
            name: name.to_string(),
            paper,
            graph: build_graph(name, scale),
        })
        .collect()
}

/// Loads a real graph file (MatrixMarket, DIMACS, METIS or edge list —
/// resolved by extension, then content sniffing) as a one-entry suite.
/// The "paper" row is the file's own measured statistics, so every
/// report renders its expected-vs-measured columns consistently.
pub fn load_entry(
    path: impl AsRef<std::path::Path>,
) -> Result<SuiteEntry, gcol_graph::io::IoError> {
    let path = path.as_ref();
    let (_, graph) = gcol_graph::io::GraphSource::open(path, gcol_graph::io::IngestLimits::NONE)?;
    let s = DegreeStats::compute(&graph);
    Ok(SuiteEntry {
        name: path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("file")
            .to_string(),
        paper: PaperRow::measured(&s),
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_at_small_scale() {
        let suite = build_suite(12);
        assert_eq!(suite.len(), 6);
        for e in &suite {
            assert!(e.graph.num_vertices() > 1000, "{} too small", e.name);
            e.graph.validate().unwrap();
            assert!(e.graph.is_symmetric(), "{} not symmetric", e.name);
        }
    }

    #[test]
    fn degree_shapes_track_table1() {
        // At reduced scale the *shape* statistics (average degree within a
        // factor, variance ordering) must match the paper's rows.
        let suite = build_suite(13);
        let by_name = |n: &str| {
            suite
                .iter()
                .find(|e| e.name == n)
                .map(|e| e.stats())
                .unwrap()
        };
        let er = by_name("rmat-er");
        let gskew = by_name("rmat-g");
        let atmos = by_name("atmosmodd");
        let g3 = by_name("G3_circuit");
        let thermal = by_name("thermal2");
        let hamrle = by_name("Hamrle3");

        // rmat-g much more skewed than rmat-er (paper: 472 vs 23).
        assert!(gskew.variance > 4.0 * er.variance);
        assert!(gskew.max_degree > 2 * er.max_degree);
        // Stencils have near-zero variance; atmosmodd tightest.
        assert!(atmos.variance < 0.3, "atmos var {}", atmos.variance);
        assert!(g3.variance < 0.5, "g3 var {}", g3.variance);
        // G3_circuit is the sparsest in the suite (paper: 4.83).
        let avgs: Vec<f64> = suite.iter().map(|e| e.stats().avg_degree).collect();
        assert!(avgs.iter().all(|&a| g3.avg_degree <= a + 1e-9));
        // Mesh/circuit graphs sit near their paper averages (off-diagonal).
        assert!(
            (thermal.avg_degree - 6.0).abs() < 1.0,
            "thermal avg {}",
            thermal.avg_degree
        );
        assert!(
            (hamrle.avg_degree - 7.0).abs() < 1.5,
            "hamrle avg {}",
            hamrle.avg_degree
        );
        // Hamrle3 has the broadest spread of the four UF graphs.
        assert!(hamrle.variance > atmos.variance);
        assert!(hamrle.variance > g3.variance);
        assert!(hamrle.variance > thermal.variance);
    }

    #[test]
    fn table1_standin_rows_are_pinned() {
        // Exact statistics of the generated Table I stand-ins at scale 10,
        // computed by the shared `gcol-graph::stats` single-pass
        // implementation (the same one `table1`, `load_entry` and the
        // planner profile use). Any change to the generators or to the
        // moment accumulation shows up here first.
        #[rustfmt::skip]
        let expected: [(&str, usize, usize, usize, usize, f64, f64); 6] = [
            ("rmat-er",    1024, 20278, 8,  36, 19.8027, 19.7169),
            ("rmat-g",     1024, 18744, 1, 102, 18.3047, 144.1357),
            ("thermal2",   1225,  6962, 2,  11,  5.6833,  1.3185),
            ("atmosmodd",  1331,  7260, 3,   6,  5.4545,  0.4463),
            ("Hamrle3",    1413, 10560, 3,  14,  7.4735,  2.1927),
            ("G3_circuit", 1521,  5928, 2,   4,  3.8974,  0.0973),
        ];
        let suite = build_suite(10);
        for (name, n, m, min, max, avg, var) in expected {
            let e = suite.iter().find(|e| e.name == name).unwrap();
            let s = e.stats();
            let p = e.profile();
            assert_eq!(s.num_vertices, n, "{name} vertices");
            assert_eq!(s.num_edges, m, "{name} edges");
            assert_eq!(s.min_degree, min, "{name} min degree");
            assert_eq!(s.max_degree, max, "{name} max degree");
            assert!(
                (s.avg_degree - avg).abs() < 1e-4,
                "{name} avg {}",
                s.avg_degree
            );
            assert!((s.variance - var).abs() < 1e-4, "{name} var {}", s.variance);
            // The profile is the same pass: identical moments, plus the
            // planner-only columns populated and finite.
            assert_eq!(p.num_vertices, s.num_vertices, "{name}");
            assert_eq!(p.num_edges, s.num_edges, "{name}");
            assert_eq!(p.min_degree, s.min_degree, "{name}");
            assert_eq!(p.max_degree, s.max_degree, "{name}");
            assert!((p.avg_degree - s.avg_degree).abs() < 1e-12, "{name}");
            assert!((p.variance - s.variance).abs() < 1e-12, "{name}");
            assert!(p.density > 0.0 && p.density.is_finite(), "{name}");
            assert!(p.skew.is_finite(), "{name}");
        }
        // The skew column orders the suite the way Table I's variance
        // does: rmat-g is by far the most skewed graph.
        let skew_of = |n: &str| suite.iter().find(|e| e.name == n).unwrap().profile().skew;
        assert!(skew_of("rmat-g") > skew_of("rmat-er"));
        assert!(skew_of("rmat-g") > skew_of("G3_circuit"));
    }

    #[test]
    fn scaling_changes_size_roughly_by_powers_of_two() {
        let small = build_graph("thermal2", 12);
        let large = build_graph("thermal2", 14);
        let ratio = large.num_vertices() as f64 / small.num_vertices() as f64;
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "unknown suite graph")]
    fn unknown_name_panics() {
        build_graph("not-a-graph", 12);
    }
}

#[cfg(test)]
mod real_file_tests {
    use super::*;

    /// At full scale, `build_graph` prefers a real `.mtx` dropped in
    /// `$GCOL_SUITE_DIR`. Exercise that path with a miniature stand-in
    /// file (env-var manipulation is process-global, so this is the only
    /// test that touches it).
    #[test]
    fn loads_real_matrix_when_present() {
        let dir = std::env::temp_dir().join("gcol-suite-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tiny = gcol_graph::gen::simple::cycle(5);
        let path = dir.join("thermal2.mtx");
        let mut buf = Vec::new();
        gcol_graph::io::write_matrix_market(&tiny, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();

        // SAFETY-free std API (Rust 2021): set_var is fine in a single
        // test binary thread as long as no other test reads this var.
        std::env::set_var("GCOL_SUITE_DIR", &dir);
        let loaded = build_graph("thermal2", 20);
        std::env::remove_var("GCOL_SUITE_DIR");

        assert_eq!(loaded, tiny, "the real file must win at scale 20");
        std::fs::remove_file(&path).ok();
    }
}

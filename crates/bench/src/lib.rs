//! # gcol-bench — the paper's experiment harness
//!
//! Regenerates every table and figure of the evaluation section (§IV):
//!
//! | Command | Paper artifact |
//! |---|---|
//! | `table1` | Table I — the six-graph benchmark suite |
//! | `fig1` | Fig. 1 — 3-step GM and csrcolor vs sequential |
//! | `fig3` | Fig. 3 — achieved-of-peak + stall breakdown |
//! | `fig6` | Fig. 6 — colors per scheme |
//! | `fig7` | Fig. 7 — speedups per scheme |
//! | `fig8` | Fig. 8 — thread-block-size sweep |
//! | `calibrate` | CPU-cost-model sanity check |
//! | `all` | everything above (suite colored once, reused) |
//!
//! Run via `cargo run --release -p gcol-bench -- <command> [--scale N]`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod suite;

pub use experiments::{ExpConfig, GraphResults, SchemeRun};
pub use suite::{build_graph, build_suite, SuiteEntry};

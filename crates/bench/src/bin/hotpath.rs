//! Wall-clock hot-path driver: times the simulator's execute-trace-replay
//! loop end to end, without criterion, so regressions are measurable in
//! constrained environments (and by the CI smoke gate).
//!
//! Runs the requested schemes on an rmat-er graph in `Deterministic` mode
//! and prints, per repeat: host wall-clock, modeled time, colors,
//! iterations, and a digest of every modeled hardware counter. The digest
//! is the equivalence check: any change to the timing model's arithmetic
//! shows up as a different digest on the same workload.
//!
//! ```text
//! cargo run --release -p gcol-bench --bin hotpath -- --scale 14 --repeat 3
//! ```
//!
//! `--backend native` runs the same schemes on the rayon backend instead
//! (no modeled time or counters — the digest is all zeros), which gives
//! the simulated-vs-native wall-clock A/B comparison.

use gcol_core::{BackendKind, ColorOptions, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_simt::{Device, ExecMode, Phase};

fn die(msg: &str) -> ! {
    eprintln!("hotpath: {msg}");
    std::process::exit(2);
}

/// Sums every integer counter of every kernel launch into one line a
/// human can diff; floats are excluded so the digest is exact.
fn digest(profile: &gcol_simt::RunProfile) -> String {
    let (mut cycles, mut instr, mut txn, mut dram) = (0u64, 0u64, 0u64, 0u64);
    let (mut ro_h, mut ro_m, mut l2_h, mut l2_m) = (0u64, 0u64, 0u64, 0u64);
    let (mut atomics, mut serial, mut kernels) = (0u64, 0u64, 0u64);
    for p in &profile.phases {
        if let Phase::Kernel(k) = p {
            kernels += 1;
            cycles += k.cycles;
            instr += k.instructions;
            txn += k.mem_transactions;
            dram += k.dram_bytes;
            ro_h += k.ro_hits;
            ro_m += k.ro_misses;
            l2_h += k.l2_hits;
            l2_m += k.l2_misses;
            atomics += k.atomics;
            serial += k.atomic_serial_cycles;
        }
    }
    format!(
        "kernels={kernels} cycles={cycles} instr={instr} txn={txn} dram={dram} \
         ro={ro_h}/{ro_m} l2={l2_h}/{l2_m} atomics={atomics} serial={serial}"
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 14u32;
    let mut repeat = 3usize;
    let mut schemes = vec![Scheme::TopoBase, Scheme::DataBase];
    let mut backend = BackendKind::Simt;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs an integer"));
                i += 2;
            }
            "--repeat" => {
                repeat = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--repeat needs an integer"));
                i += 2;
            }
            "--schemes" => {
                let list = args
                    .get(i + 1)
                    .unwrap_or_else(|| die("--schemes needs a comma-separated list"));
                schemes = list
                    .split(',')
                    .map(|s| {
                        Scheme::from_name(s)
                            .unwrap_or_else(|| die(&format!("unknown scheme {s:?}")))
                    })
                    .collect();
                i += 2;
            }
            "--backend" => {
                backend = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--backend needs 'simt' or 'native'"));
                i += 2;
            }
            other => die(&format!("unknown option {other:?}")),
        }
    }

    let t0 = std::time::Instant::now();
    let g = gen::rmat(RmatParams::erdos_renyi(scale, 20), 0xE5);
    eprintln!(
        "graph: rmat-er scale {scale} ({} vertices, {} edges) built in {:.1}s",
        g.num_vertices(),
        g.num_edges(),
        t0.elapsed().as_secs_f64()
    );

    let dev = Device::k20c();
    let opts = ColorOptions::default()
        .with_exec_mode(ExecMode::Deterministic)
        .with_backend(backend);
    eprintln!("backend: {backend}");
    for scheme in &schemes {
        for rep in 0..repeat {
            let t = std::time::Instant::now();
            let c = match scheme.try_color(&g, &dev, &opts) {
                Ok(c) => c,
                Err(e) => die(&format!("{e}")),
            };
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            println!(
                "{name} rep={rep} wall_ms={wall_ms:.1} modeled_ms={modeled:.3} \
                 colors={colors} iters={iters}\n  {digest}",
                name = scheme.name(),
                modeled = c.total_ms(),
                colors = c.num_colors,
                iters = c.iterations,
                digest = digest(&c.profile),
            );
        }
    }
}

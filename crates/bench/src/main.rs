//! CLI entry point for the experiment harness.

use gcol_bench::experiments::{
    self, ablation, archsweep, calibrate, convergence, fig1, fig3, fig6, fig7, fig8, hashsweep,
    incremental, loadgen, planner, planner_calibrate, profile, quality, relabel, sanitize, scaling,
    shardscale, table1, variance, ExpConfig,
};
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::Csr;
use gcol_serve::{serve_lines, Service, ServiceConfig};
use gcol_simt::ExecMode;
use std::sync::Arc;

const USAGE: &str = "\
gcol-bench — regenerate the paper's tables and figures

USAGE:
    gcol-bench <COMMAND> [OPTIONS]

COMMANDS:
    table1      Table I  — benchmark-graph statistics
    fig1        Fig. 1   — existing GPU implementations vs sequential
    fig3        Fig. 3   — kernel characterization (latency-bound)
    fig6        Fig. 6   — colors per scheme
    fig7        Fig. 7   — speedup per scheme
    fig8        Fig. 8   — thread-block-size sweep
    calibrate   CPU-cost-model sanity check
    profile G S nvprof-style timeline of scheme S on suite graph G
                (S may be `auto`: the planner resolves the scheme from the
                graph profile and --slo, and the plan is printed)
    planner     scheme-auto A/B: measure every candidate scheme per suite
                graph, resolve the planner's choice under each SLO, report
                wall regret vs the per-graph best and color overhead vs the
                per-graph fewest; --smoke runs the tier-1 CI gate (three
                small generators, modeled simt times, fastest-wall regret
                ≤ 1.10x, fewest-colors overhead ≤ +1)
    planner-calibrate
                fit the planner's log-linear decision table over the
                generated suite at --scale and two smaller scales, and
                print the `MODELS` block to paste into
                crates/plan/src/model.rs (the only source of coefficients;
                nothing is fitted at runtime)
    ablation    design-choice ablations (atomics, ldg, task mapping, balance)
    archsweep   Kepler vs Fermi: why __ldg is a Kepler-specific win
    hashsweep   csrcolor quality/speed trade vs hash count N
    convergence per-round worklist drain of the speculative scheme
    quality     color-count league table across every scheme + bounds
    scaling     headline speedups vs suite scale
    shardscale  multi-device scaling: every GPU scheme at P = 1/2/4 shards,
                dense-vs-delta frontier-encoding A/B (frontier bytes +
                modeled ms); --exchange pins one encoding, --smoke runs
                the CI invariant checks (delta never ships more bytes,
                one-round schemes never regress vs dense)
    incremental incremental-recoloring A/B: repair the old coloring through
                the dirty-set engine vs rerun from scratch after edge-edit
                batches of 0.1/1/5% of the edges, every GPU scheme (wall
                clock + modeled kernel work); --smoke runs the CI gate
                (at 1%, delta never issues more kernel instructions)
    relabel     RCM locality-preprocessing ablation (the choice of SIII-C)
    sanitize    kernel launch sanitizer audit: every GPU scheme, P = 1/2,
                shadow-memory race/ldg/bounds/init analysis (fails on any
                harmful finding)
    variance    seed-robustness study (the paper's 10-run averaging analogue)
    loadgen     coloring-service load generator: open-loop arrival traces
                (unique / bursty / duplicate-heavy) vs worker count, with
                throughput + latency percentiles; default (no --trace) runs
                the {1,--workers} x {unique,duplicate} A/B grid; --smoke runs
                the CI invariant checks (0 rejections idle, 100% cache hits
                on a duplicate-only replay)
    serve       run the coloring service on stdio (or --listen HOST:PORT,
                one connection), speaking the line-delimited JSON protocol
                of gcol-serve: {\"op\":\"color\",\"graph\":{...},...} per line
    all         run every experiment (colors the suite once)

OPTIONS:
    --graph PATH  run on a real graph file instead of the generated suite.
                  Format resolved from the extension (.mtx, .col, .graph,
                  .edges), then by content sniffing. Suite experiments
                  shrink to this one graph; shardscale, incremental,
                  profile, hashsweep and variance swap their generated
                  workload for it; scaling and loadgen ignore it
    --scale N     log2-equivalent suite scale (default 15; the paper's
                  experiments correspond to 20 — expect long runtimes on a
                  laptop at that size)
    --block N     thread block size for GPU schemes (default 128)
    --parallel    simulate SMs on multiple host threads (results may vary
                  across runs where the algorithm itself races)
    --backend B   execution backend for the GPU schemes: simt (the timing
                  simulator, default), native (rayon, wall-clock only —
                  no modeled kernel times, so speedup columns lose their
                  paper meaning) or sanitize (simt + shadow-memory launch
                  analysis; identical colors and modeled times)
    --sanitize    shorthand for --backend sanitize
    --shards N    device count for the GPU schemes (default 1): partition
                  the graph into N shards colored on independent backend
                  instances with ghost-frontier exchange rounds
    --exchange E  ghost-frontier wire encoding for sharded runs: dense
                  (ship every ghost color every round) or delta (dirty
                  bitmask + changed colors, dense fallback). Default:
                  delta everywhere; shardscale sweeps both when the flag
                  is absent
    --scheme S    scheme selection for `profile` (alternative to the
                  positional): a paper scheme name, or `auto` to let the
                  planner pick from the graph profile
    --slo S       planner objective wherever a scheme is auto-resolved:
                  fastest-wall (default), fewest-colors or balanced;
                  `planner` reports all three unless --slo pins one
    --json PATH   also write the raw results as JSON
    --sanitize-json PATH
                  sanitize: also write the full structured findings report
                  (every scheme/graph/P run with its complete sanitizer
                  report) for diffing against the checked-in baseline at
                  crates/bench/tests/data/sanitize_baseline.json

SERVICE OPTIONS (loadgen / serve):
    --workers N   service worker threads (default 4)
    --jobs N      loadgen: jobs per trace replay (default 200)
    --rate R      loadgen: open-loop arrival rate in jobs/s (default 0 =
                  unpaced: the whole trace is submitted at once)
    --trace T     loadgen: replay a single trace — uniform, bursty,
                  duplicate or unique — instead of the A/B grid
    --smoke       loadgen/shardscale/incremental: run the CI invariant
                  checks and exit
    --listen A    serve: accept one TCP connection on A (e.g. 127.0.0.1:7070)
                  instead of serving stdio
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprint!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let command = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut lg = loadgen::LoadgenOptions::default();
    let mut listen: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => {
                cfg.graph = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--graph needs a path")),
                );
                i += 2;
            }
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs an integer"));
                i += 2;
            }
            "--block" => {
                cfg.block_size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--block needs an integer"));
                i += 2;
            }
            "--parallel" => {
                cfg.exec_mode = ExecMode::Parallel;
                i += 1;
            }
            "--backend" => {
                cfg.backend = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--backend needs 'simt', 'native' or 'sanitize'"));
                i += 2;
            }
            "--sanitize" => {
                cfg.backend = gcol_core::BackendKind::Sanitize;
                i += 1;
            }
            "--shards" => {
                cfg.shards = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--shards needs a positive integer"));
                i += 2;
            }
            "--exchange" => {
                cfg.exchange = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--exchange needs 'dense' or 'delta'")),
                );
                i += 2;
            }
            "--scheme" => {
                cfg.scheme = Some(
                    args.get(i + 1)
                        .and_then(|v| profile::parse_choice(v))
                        .unwrap_or_else(|| die("--scheme needs a scheme name or 'auto'")),
                );
                i += 2;
            }
            "--slo" => {
                cfg.slo = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            die("--slo needs fastest-wall, fewest-colors or balanced")
                        }),
                );
                i += 2;
            }
            "--json" => {
                cfg.json = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a path")),
                );
                i += 2;
            }
            "--sanitize-json" => {
                cfg.sanitize_json = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--sanitize-json needs a path")),
                );
                i += 2;
            }
            "--workers" => {
                lg.workers = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
                i += 2;
            }
            "--jobs" => {
                lg.jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
                i += 2;
            }
            "--rate" => {
                lg.rate = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r.is_finite() && r >= 0.0)
                    .unwrap_or_else(|| die("--rate needs a non-negative number"));
                i += 2;
            }
            "--trace" => {
                lg.trace = Some(
                    args.get(i + 1)
                        .and_then(|v| loadgen::TraceKind::parse(v))
                        .unwrap_or_else(|| {
                            die("--trace needs uniform, bursty, duplicate or unique")
                        }),
                );
                i += 2;
            }
            "--smoke" => {
                lg.smoke = true;
                cfg.smoke = true;
                i += 1;
            }
            "--listen" => {
                listen = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--listen needs HOST:PORT")),
                );
                i += 2;
            }
            other if !other.starts_with('-') => {
                positional.push(other.to_string());
                i += 1;
            }
            other => die(&format!("unknown option {other:?}")),
        }
    }
    let _ = &positional;

    // Validate --graph up front: a typo or malformed file dies with the
    // typed ingest error (and its line number) before any experiment
    // spends minutes generating graphs.
    if let Some(path) = cfg.graph.as_deref() {
        if let Err(e) = gcol_bench::suite::load_entry(path) {
            die(&format!("--graph {path}: {e}"));
        }
    }

    let t0 = std::time::Instant::now();
    match command.as_str() {
        "table1" => println!("{}", table1::run(&cfg)),
        "fig1" => println!("{}", fig1::run(&cfg)),
        "fig3" => println!("{}", fig3::run(&cfg)),
        "fig6" => println!("{}", fig6::run(&cfg)),
        "fig7" => println!("{}", fig7::run(&cfg)),
        "fig8" => println!("{}", fig8::run(&cfg)),
        "calibrate" => println!("{}", calibrate::run(&cfg)),
        "ablation" => println!("{}", ablation::run(&cfg)),
        "archsweep" => println!("{}", archsweep::run(&cfg)),
        "hashsweep" => println!("{}", hashsweep::run(&cfg)),
        "convergence" => println!("{}", convergence::run(&cfg)),
        "quality" => println!("{}", quality::run(&cfg)),
        "scaling" => println!("{}", scaling::run(&cfg)),
        "shardscale" => println!("{}", shardscale::run(&cfg)),
        "incremental" => println!("{}", incremental::run(&cfg)),
        "relabel" => println!("{}", relabel::run(&cfg)),
        "sanitize" => println!("{}", sanitize::run(&cfg)),
        "variance" => println!("{}", variance::run(&cfg)),
        "loadgen" => println!("{}", loadgen::run(&cfg, &lg)),
        "serve" => run_serve(&lg, listen.as_deref()),
        "planner" => println!("{}", planner::run(&cfg)),
        "planner-calibrate" => println!("{}", planner_calibrate::run(&cfg)),
        "profile" => {
            // With --graph the file is the subject, so the only
            // positional is the scheme: `profile --graph g.mtx D-ldg`.
            let (graph, scheme_at) = if cfg.graph.is_some() {
                (String::new(), 0)
            } else {
                let name = positional
                    .first()
                    .cloned()
                    .unwrap_or_else(|| die("profile needs: profile <graph> <scheme>"));
                (name, 1)
            };
            // The positional scheme (which may itself be `auto`) wins
            // over --scheme; either may supply it.
            let choice = match positional.get(scheme_at) {
                Some(s) => profile::parse_choice(s)
                    .unwrap_or_else(|| die("profile needs a valid scheme name or 'auto'")),
                None => cfg
                    .scheme
                    .unwrap_or_else(|| die("profile needs a scheme name or 'auto'")),
            };
            println!("{}", profile::run(&cfg, &graph, choice));
        }
        "all" => {
            println!("{}", table1::run(&cfg));
            println!("{}", calibrate::run(&cfg));
            // Color the suite once for Figs. 1, 6 and 7.
            let results = experiments::run_suite_all_schemes(&cfg);
            gcol_bench::report::maybe_write_json(cfg.json.as_deref(), &results)
                .expect("json write");
            println!("{}", fig1::render(&results));
            println!("{}", fig6::render(&results));
            println!("{}", fig7::render(&results));
            println!("{}", fig3::run(&cfg));
            println!("{}", fig8::run(&cfg));
            println!("{}", ablation::run(&cfg));
            println!("{}", archsweep::run(&cfg));
            println!("{}", hashsweep::run(&cfg));
            println!("{}", convergence::run(&cfg));
            println!("{}", quality::run(&cfg));
            println!("{}", relabel::run(&cfg));
            println!("{}", sanitize::run(&cfg));
            println!("{}", variance::run(&cfg));
        }
        other => die(&format!("unknown command {other:?}")),
    }
    eprintln!("[{command} done in {:.1}s]", t0.elapsed().as_secs_f64());
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Resolves the protocol's named-graph requests (`{"gen":name,...}`):
/// the Table I suite names, plus `rmat`/`rmat-er`/`rmat-g` with the
/// request's own seed. Suite stand-ins keep their pinned seeds, so the
/// request seed only matters for the plain rmat generators.
fn resolve_graph(name: &str, scale: u32, seed: u64) -> Result<Arc<Csr>, String> {
    if !(8..=22).contains(&scale) {
        return Err(format!("scale {scale} out of the supported 8..=22 range"));
    }
    match name {
        "rmat" | "rmat-er" => Ok(Arc::new(gen::rmat(RmatParams::erdos_renyi(scale, 20), seed))),
        "rmat-g" => Ok(Arc::new(gen::rmat(RmatParams::skewed(scale, 20), seed))),
        "thermal2" | "atmosmodd" | "Hamrle3" | "G3_circuit" => {
            Ok(Arc::new(gcol_bench::suite::build_graph(name, scale)))
        }
        other => Err(format!(
            "unknown graph {other:?} (known: rmat-er, rmat-g, thermal2, atmosmodd, Hamrle3, G3_circuit)"
        )),
    }
}

/// `gcol-bench serve`: the coloring service over stdio, or over a single
/// TCP connection with `--listen`.
fn run_serve(lg: &loadgen::LoadgenOptions, listen: Option<&str>) {
    let service = Service::start(ServiceConfig {
        num_workers: lg.workers,
        ..ServiceConfig::default()
    });
    let stats = match listen {
        None => {
            eprintln!(
                "gcol-bench serve: {} workers, line protocol on stdio (EOF or {{\"op\":\"shutdown\"}} to stop)",
                lg.workers
            );
            serve_lines(
                service,
                std::io::stdin().lock(),
                std::io::stdout(),
                &resolve_graph,
            )
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| die(&format!("--listen {addr}: {e}")));
            eprintln!(
                "gcol-bench serve: {} workers, listening on {addr} (serving one connection)",
                lg.workers
            );
            let (stream, peer) = listener.accept().expect("accept");
            eprintln!("gcol-bench serve: connection from {peer}");
            let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
            serve_lines(service, reader, stream, &resolve_graph)
        }
    }
    .expect("serve I/O");
    eprintln!("gcol-bench serve: drained\n{stats}");
}

//! Report formatting: aligned text tables with paper-vs-measured columns,
//! plus JSON export for downstream tooling.

use serde::Serialize;

/// A simple aligned text table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cell, w = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with fixed precision.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a speedup ratio like the paper's figures ("2.31x").
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Writes a serializable report to a JSON file if `path` is given.
pub fn maybe_write_json<T: Serialize>(path: Option<&str>, value: &T) -> std::io::Result<()> {
    if let Some(path) = path {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer_pretty(file, value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["graph", "colors"]);
        t.row(vec!["rmat-er", "12"]);
        t.row(vec!["g3", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("graph"));
        assert!(lines[2].ends_with("12"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn float_and_speedup_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(speedup(2.5), "2.50x");
    }

    #[test]
    fn json_written_when_path_given() {
        let dir = std::env::temp_dir().join("gcol-report-test.json");
        let path = dir.to_str().unwrap();
        maybe_write_json(Some(path), &vec![1, 2, 3]).unwrap();
        let back: Vec<u32> = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::fs::remove_file(path).ok();
        // None path is a no-op.
        maybe_write_json(None, &42).unwrap();
    }
}

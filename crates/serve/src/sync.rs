//! Synchronization facade: every lock, condvar and thread the serve
//! layer uses goes through this module, so the whole layer can be
//! compiled against two backends:
//!
//! * **std** (the default): thin wrappers over `std::sync`, plus — in
//!   debug builds — the [`lock_order`] tracker, which records the
//!   runtime lock-acquisition graph of [named](Mutex::named) mutex
//!   classes and detects ordering cycles (the static shadow of a
//!   deadlock) long before a schedule actually deadlocks.
//! * **loom** (`RUSTFLAGS="--cfg loom"`): the model-checking backend.
//!   `cargo test -p gcol-serve --test loom` then explores *every*
//!   bounded interleaving of the admission queue, coalescing map, cache
//!   fill and drain machinery instead of the handful a normal run
//!   happens to hit. See `third_party/loom` for the explorer itself.
//!
//! The wrappers keep `std::sync` signatures (`lock()` returns a
//! `LockResult`, condvar `wait` consumes and returns the guard) so code
//! written against this module reads exactly like code written against
//! `std::sync` — the facade is a compile-time switch, not an API.
//!
//! `Arc` is deliberately re-exported from `std` under both backends:
//! the loom shim does not model drop/ref-count interleavings, and
//! keeping one `Arc` type lets non-sync code share it freely.

pub use std::sync::Arc;
use std::sync::LockResult;

#[cfg(loom)]
use loom::sync as imp;
#[cfg(not(loom))]
use std::sync as imp;

/// Model-aware threads: `std::thread` normally, loom's cooperative
/// model threads under `--cfg loom`.
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, Builder, JoinHandle};
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle};
}

/// Mutex wrapper: backend-switched, never poisons (a panicked holder's
/// poison is swallowed on the std backend — the serve layer treats
/// panics as bugs, not states to propagate through locks), and
/// optionally [named](Mutex::named) into a lock-order class.
pub struct Mutex<T> {
    class: Option<&'static str>,
    inner: imp::Mutex<T>,
}

impl<T> Mutex<T> {
    /// An anonymous mutex: tracked backend-wise but not part of the
    /// lock-order graph.
    pub fn new(value: T) -> Self {
        Self {
            class: None,
            inner: imp::Mutex::new(value),
        }
    }

    /// A mutex belonging to the named lock-order class. Every
    /// acquisition while another class is held records an edge in the
    /// [`lock_order`] graph (debug builds, std backend).
    pub fn named(class: &'static str, value: T) -> Self {
        Self {
            class: Some(class),
            inner: imp::Mutex::new(value),
        }
    }

    /// Acquires the lock. The `LockResult` is always `Ok` (see the type
    /// docs on poisoning); the signature mirrors `std::sync::Mutex` so
    /// call sites read identically.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(c) = self.class {
            lock_order::acquire(c);
        }
        let inner = lock_unpoisoned(&self.inner);
        Ok(MutexGuard {
            class: self.class,
            inner: Some(inner),
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

#[cfg(not(loom))]
fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(loom)]
fn lock_unpoisoned<T>(m: &loom::sync::Mutex<T>) -> loom::sync::MutexGuard<'_, T> {
    m.lock()
        .unwrap_or_else(|_| unreachable!("loom mutexes never poison"))
}

/// Guard for [`Mutex`]; releases the lock (and pops the lock-order
/// class) on drop.
pub struct MutexGuard<'a, T> {
    class: Option<&'static str>,
    inner: Option<imp::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(c) = self.class {
            lock_order::release(c);
        }
    }
}

/// Condition variable wrapper, backend-switched like [`Mutex`].
pub struct Condvar {
    inner: imp::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// A new condvar with no waiters.
    pub fn new() -> Self {
        Self {
            inner: imp::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified,
    /// then re-acquires. The lock-order class is popped for the duration
    /// of the wait (the lock is genuinely not held).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let class = guard.class.take();
        let inner = guard.inner.take().expect("guard live");
        drop(guard);
        if let Some(c) = class {
            lock_order::release(c);
        }
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(e) => wait_unpoisoned(e),
        };
        if let Some(c) = class {
            lock_order::acquire(c);
        }
        Ok(MutexGuard {
            class,
            inner: Some(inner),
        })
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one()
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(not(loom))]
fn wait_unpoisoned<T>(
    e: std::sync::PoisonError<std::sync::MutexGuard<'_, T>>,
) -> std::sync::MutexGuard<'_, T> {
    e.into_inner()
}

#[cfg(loom)]
fn wait_unpoisoned<T>(
    _: std::sync::PoisonError<loom::sync::MutexGuard<'_, T>>,
) -> loom::sync::MutexGuard<'_, T> {
    unreachable!("loom condvars never poison")
}

/// Runtime lock-order tracking over the [named](Mutex::named) mutex
/// classes (debug builds, std backend; compiled out elsewhere).
///
/// Whenever a thread acquires a named mutex while holding another, the
/// pair `(held → acquired)` becomes an edge in a process-global directed
/// graph. A cycle in that graph means two schedules exist that acquire
/// the same classes in opposite orders — the precondition for an
/// AB/BA deadlock — even if no observed schedule has deadlocked yet.
/// Cycles are detected at edge-insert time and recorded (not panicked:
/// detection may run inside a lock acquisition deep in a worker);
/// integration tests call [`lock_order::assert_acyclic`] at the end to
/// fail loudly.
pub mod lock_order {
    #[cfg(all(debug_assertions, not(loom)))]
    mod imp {
        use std::cell::RefCell;
        use std::collections::{BTreeMap, BTreeSet};
        use std::sync::Mutex as StdMutex;

        struct Graph {
            /// class → classes acquired while it was held.
            edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
            violations: Vec<String>,
        }

        static GRAPH: StdMutex<Option<Graph>> = StdMutex::new(None);

        thread_local! {
            static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        }

        /// Is `to` reachable from `from` along recorded edges?
        fn reachable(g: &Graph, from: &'static str, to: &'static str) -> bool {
            let mut stack = vec![from];
            let mut seen = BTreeSet::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if seen.insert(n) {
                    if let Some(next) = g.edges.get(n) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            false
        }

        pub fn acquire(class: &'static str) {
            let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
            if !held.is_empty() {
                let mut slot = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
                let g = slot.get_or_insert_with(|| Graph {
                    edges: BTreeMap::new(),
                    violations: Vec::new(),
                });
                for h in held {
                    if h == class {
                        // Recursive acquisition of the same class is its
                        // own violation (self-deadlock with one thread).
                        g.violations.push(format!(
                            "lock-order: class {class:?} acquired while already held \
                             by the same thread"
                        ));
                        continue;
                    }
                    if g.edges.entry(h).or_default().insert(class) && reachable(g, class, h) {
                        g.violations.push(format!(
                            "lock-order cycle: edge {h:?} -> {class:?} closes a cycle \
                             (some schedule acquires these classes in the opposite order)"
                        ));
                    }
                }
            }
            HELD.with(|h| h.borrow_mut().push(class));
        }

        pub fn release(class: &'static str) {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                // Guards may drop out of acquisition order; pop the most
                // recent instance of this class.
                if let Some(i) = h.iter().rposition(|c| *c == class) {
                    h.remove(i);
                }
            });
        }

        pub fn violations() -> Vec<String> {
            GRAPH
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|g| g.violations.clone())
                .unwrap_or_default()
        }

        pub fn edges() -> Vec<(&'static str, &'static str)> {
            GRAPH
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|g| {
                    g.edges
                        .iter()
                        .flat_map(|(h, ts)| ts.iter().map(move |t| (*h, *t)))
                        .collect()
                })
                .unwrap_or_default()
        }
    }

    #[cfg(not(all(debug_assertions, not(loom))))]
    mod imp {
        pub fn acquire(_class: &'static str) {}
        pub fn release(_class: &'static str) {}
        pub fn violations() -> Vec<String> {
            Vec::new()
        }
        pub fn edges() -> Vec<(&'static str, &'static str)> {
            Vec::new()
        }
    }

    pub(super) use imp::{acquire, release};

    /// Every lock-order violation recorded so far (cycles and recursive
    /// same-class acquisitions). Empty in release builds and under loom.
    pub fn violations() -> Vec<String> {
        imp::violations()
    }

    /// The recorded acquisition edges `(held, acquired)`. Empty in
    /// release builds and under loom.
    pub fn edges() -> Vec<(&'static str, &'static str)> {
        imp::edges()
    }

    /// Panics if any lock-order violation has been recorded. Call at the
    /// end of integration tests that exercised concurrent paths.
    pub fn assert_acyclic() {
        let v = violations();
        assert!(
            v.is_empty(),
            "lock-order violations recorded:\n  {}",
            v.join("\n  ")
        );
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn guard_roundtrip_and_condvar() {
        let m = Mutex::new(0u32);
        *m.lock().unwrap() = 7;
        assert_eq!(*m.lock().unwrap(), 7);
        let cv = Condvar::new();
        cv.notify_one(); // no waiters: must not panic
        cv.notify_all();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lock_order_cycle_detected() {
        // Classes unique to this test so parallel tests cannot pollute
        // the edges under scrutiny.
        let a = Mutex::named("t-cycle-a", ());
        let b = Mutex::named("t-cycle-b", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap(); // a -> b
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap(); // b -> a: closes the cycle
        }
        let v = lock_order::violations();
        assert!(
            v.iter().any(|m| m.contains("t-cycle")),
            "cycle between test classes not recorded: {v:?}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn consistent_order_records_edges_without_violation() {
        let outer = Mutex::named("t-order-outer", ());
        let inner = Mutex::named("t-order-inner", ());
        for _ in 0..3 {
            let _g1 = outer.lock().unwrap();
            let _g2 = inner.lock().unwrap();
        }
        assert!(lock_order::edges().contains(&("t-order-outer", "t-order-inner")));
        assert!(!lock_order::violations()
            .iter()
            .any(|m| m.contains("t-order")));
    }
}

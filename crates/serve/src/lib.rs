//! # gcol-serve — a long-lived coloring service over the backend layer
//!
//! Everything below this crate is a one-shot library call: build a
//! graph, pick a [`gcol_core::Scheme`], get a coloring. This crate adds
//! the serving layer the ROADMAP's "heavy traffic" north star needs —
//! a process that stays up, runs many independent coloring requests
//! concurrently, and reuses work across identical ones:
//!
//! * [`Service`] — a worker pool over a **bounded admission queue** with
//!   typed rejection ([`Rejection::QueueFull`] / [`Rejection::GraphTooLarge`]
//!   / [`Rejection::ShuttingDown`]) and graceful drain on
//!   [`Service::shutdown`]: accepted jobs always resolve.
//! * **Request coalescing + result cache** — jobs are keyed by
//!   [`gcol_core::JobSpec::fingerprint`] (a 128-bit hash of the CSR
//!   bytes and every output-relevant option); duplicate in-flight
//!   requests attach to one execution, repeats hit a fingerprint-keyed
//!   LRU ([`cache::ResultCache`]). Serving never changes results:
//!   cold, coalesced and cached responses are bit-identical.
//! * **Metrics** — per-job ([`JobResponse`]: queue wait, execution
//!   wall, source) and service-level ([`ServiceStats`]: counters plus
//!   latency percentiles).
//! * [`server::serve_lines`] + [`proto`] — a line-delimited JSON
//!   protocol over any `BufRead`/`Write` (stdio or a socket; the
//!   `gcol-bench serve` command wires both), with its own small strict
//!   [`json`] codec so external load generators need nothing special.
//!
//! The execution substrate is untouched: workers call
//! [`gcol_core::Scheme::try_color`], so every backend (simt timing
//! simulator, native rayon, sharded multi-device, sanitizer) and every
//! scheme serve identically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod json;
pub mod proto;
pub mod server;
pub mod service;
pub mod sync;

pub use cache::ResultCache;
pub use server::serve_lines;
pub use service::{
    DrainController, JobHandle, JobRequest, JobResponse, Rejection, ResultSource, ServeError,
    Service, ServiceConfig, ServiceStats,
};

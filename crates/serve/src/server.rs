//! Drives a [`Service`] from a line-delimited JSON stream (stdio, a TCP
//! socket, a unit test's byte buffer — anything `BufRead`/`Write`).
//!
//! Requests pipeline: each accepted job gets a responder thread that
//! waits on its [`crate::JobHandle`] and writes the response line when
//! the job resolves, so a fast cache hit overtakes a slow cold run that
//! was submitted earlier. Clients correlate by `id`. Responses are
//! whole lines written under a mutex, so concurrent resolutions never
//! interleave bytes.

use crate::proto::{self, GraphSpec, Request};
use crate::service::{Service, ServiceStats};
use gcol_graph::Csr;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Resolves a named graph request (`{"gen":…,"scale":…,"seed":…}`) to a
/// graph. The embedding decides which names exist; the server memoizes
/// results so repeated requests do not regenerate.
pub type GraphResolver<'a> = dyn Fn(&str, u32, u64) -> Result<Arc<Csr>, String> + Sync + 'a;

/// Serves `reader` until EOF or a `shutdown` request, then drains the
/// service and returns its final stats. Every accepted job's response is
/// written before this returns.
pub fn serve_lines<R, W>(
    service: Service,
    reader: R,
    writer: W,
    resolve: &GraphResolver<'_>,
) -> std::io::Result<ServiceStats>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    let mut responders: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut graphs: HashMap<(String, u32, u64), Arc<Csr>> = HashMap::new();
    let write_line = |w: &Arc<Mutex<W>>, line: String| -> std::io::Result<()> {
        let mut w = w.lock().unwrap();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    };

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse(&line) {
            Ok(req) => req,
            Err(msg) => {
                write_line(&writer, proto::error_response(None, "bad-request", &msg))?;
                continue;
            }
        };
        match req {
            Request::Stats { id } => {
                write_line(&writer, proto::stats_response(id, &service.stats()))?;
            }
            Request::Shutdown { id } => {
                write_line(&writer, proto::ack_response(id, "draining"))?;
                break;
            }
            Request::Color {
                id,
                graph,
                spec,
                deadline_ms,
                assignment,
            } => {
                let graph = match graph {
                    GraphSpec::Inline(g) => Arc::new(g),
                    GraphSpec::Named { name, scale, seed } => {
                        let key = (name.clone(), scale, seed);
                        match graphs.entry(key) {
                            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                match resolve(&name, scale, seed) {
                                    Ok(g) => Arc::clone(slot.insert(g)),
                                    Err(msg) => {
                                        write_line(
                                            &writer,
                                            proto::error_response(id, "unknown-graph", &msg),
                                        )?;
                                        continue;
                                    }
                                }
                            }
                        }
                    }
                };
                let req = crate::service::JobRequest {
                    graph,
                    spec,
                    deadline: deadline_ms.map(Duration::from_millis),
                };
                match service.submit(req) {
                    Err(rej) => write_line(
                        &writer,
                        proto::error_response(id, proto::rejection_code(&rej), &rej.to_string()),
                    )?,
                    Ok(handle) => {
                        let writer = Arc::clone(&writer);
                        responders.push(std::thread::spawn(move || {
                            let line = match handle.wait() {
                                Ok(r) => proto::ok_response(id, &r, assignment),
                                Err(e) => proto::error_response(
                                    id,
                                    proto::serve_error_code(&e),
                                    &e.to_string(),
                                ),
                            };
                            let mut w = writer.lock().unwrap();
                            let _ = w.write_all(line.as_bytes());
                            let _ = w.write_all(b"\n");
                            let _ = w.flush();
                        }));
                    }
                }
            }
        }
    }
    // Drain: every accepted handle resolves, then every responder has a
    // resolved handle to write out.
    let stats = service.shutdown();
    for r in responders {
        let _ = r.join();
    }
    Ok(stats)
}

//! Drives a [`Service`] from a line-delimited JSON stream (stdio, a TCP
//! socket, a unit test's byte buffer — anything `BufRead`/`Write`).
//!
//! Requests pipeline: each accepted job gets a responder thread that
//! waits on its [`crate::JobHandle`] and writes the response line when
//! the job resolves, so a fast cache hit overtakes a slow cold run that
//! was submitted earlier. Clients correlate by `id`. Responses are
//! whole lines written under a mutex, so concurrent resolutions never
//! interleave bytes.
//!
//! ## The incremental session
//!
//! `mutate`/`recolor` operate on per-connection state: the **session
//! graph**, the last `recolor` result (the *baseline*) and the dirty set
//! the mutations since then have touched. A `recolor` whose options
//! match the baseline's repairs it through
//! [`gcol_core::recolor_delta`] instead of rerunning the scheme. These
//! verbs run synchronously on the reading thread — they mutate session
//! state, so ordering against subsequent requests must be strict — and
//! they bypass the service's result cache entirely: a repaired coloring
//! is proper but not bit-identical to a from-scratch run, so it must
//! never be served to a `color` request, whose cache the graph's content
//! fingerprint keys (mutation rolls the fingerprint, so stale entries
//! are unreachable rather than explicitly purged).

use crate::proto::{self, GraphSpec, Request};
use crate::service::{Rejection, Service, ServiceStats};
use crate::sync::{thread, Arc, Mutex};
use gcol_core::{recolor_delta, Coloring, JobSpec};
use gcol_graph::io::{GraphFormat, GraphSource, IngestLimits};
use gcol_graph::{Csr, VertexId};
use gcol_plan::AutoColorer;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, Write};
use std::time::Duration;

/// Per-connection incremental state: the graph `mutate` edits and the
/// baseline coloring + accumulated dirty set `recolor` repairs.
struct Session {
    graph: Arc<Csr>,
    base: Option<(JobSpec, Arc<Coloring>)>,
    dirty: BTreeSet<VertexId>,
}

/// An in-progress chunked `load`: the text accumulated so far and the
/// format the first chunk declared (if any). Dropped whole on any
/// failure, so the connection recovers to a clean slate.
struct Upload {
    format: Option<GraphFormat>,
    data: String,
}

/// Resolves a request's graph reference against the memoized named-graph
/// table (inline graphs pass straight through).
fn lookup_graph(
    graphs: &mut HashMap<(String, u32, u64), Arc<Csr>>,
    resolve: &GraphResolver<'_>,
    spec: GraphSpec,
) -> Result<Arc<Csr>, String> {
    match spec {
        GraphSpec::Inline(g) => Ok(Arc::new(g)),
        GraphSpec::Named { name, scale, seed } => match graphs.entry((name.clone(), scale, seed)) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(Arc::clone(e.get())),
            std::collections::hash_map::Entry::Vacant(slot) => {
                Ok(Arc::clone(slot.insert(resolve(&name, scale, seed)?)))
            }
        },
        // The session graph lives on the connection, not in the named
        // table; callers resolve it before reaching here.
        GraphSpec::Session => Err("no session graph: load or mutate one first".into()),
    }
}

/// Resolves a named graph request (`{"gen":…,"scale":…,"seed":…}`) to a
/// graph. The embedding decides which names exist; the server memoizes
/// results so repeated requests do not regenerate.
pub type GraphResolver<'a> = dyn Fn(&str, u32, u64) -> Result<Arc<Csr>, String> + Sync + 'a;

/// Serves `reader` until EOF or a `shutdown` request, then drains the
/// service and returns its final stats. Every accepted job's response is
/// written before this returns.
pub fn serve_lines<R, W>(
    service: Service,
    reader: R,
    writer: W,
    resolve: &GraphResolver<'_>,
) -> std::io::Result<ServiceStats>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::named("conn-writer", writer));
    let mut responders: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut graphs: HashMap<(String, u32, u64), Arc<Csr>> = HashMap::new();
    let mut session: Option<Session> = None;
    let mut upload: Option<Upload> = None;
    let write_line = |w: &Arc<Mutex<W>>, line: String| -> std::io::Result<()> {
        let mut w = w.lock().unwrap();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    };

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse(&line) {
            Ok(req) => req,
            Err(msg) => {
                write_line(&writer, proto::error_response(None, "bad-request", &msg))?;
                continue;
            }
        };
        match req {
            Request::Stats { id } => {
                write_line(&writer, proto::stats_response(id, &service.stats()))?;
            }
            Request::Mutate { id, graph, edits } => {
                // `"graph":"session"` names the graph already installed
                // (by a `load` or earlier mutate) — nothing to replace.
                if let Some(spec) = graph.filter(|g| !matches!(g, GraphSpec::Session)) {
                    match lookup_graph(&mut graphs, resolve, spec) {
                        Ok(g) => {
                            session = Some(Session {
                                graph: g,
                                base: None,
                                dirty: BTreeSet::new(),
                            });
                        }
                        Err(msg) => {
                            write_line(&writer, proto::error_response(id, "unknown-graph", &msg))?;
                            continue;
                        }
                    }
                }
                let Some(sess) = session.as_mut() else {
                    write_line(
                        &writer,
                        proto::error_response(
                            id,
                            "no-graph",
                            "no session graph: include \"graph\" in a mutate first",
                        ),
                    )?;
                    continue;
                };
                match sess.graph.with_edits(&edits) {
                    Ok((g, touched)) => {
                        sess.graph = Arc::new(g);
                        sess.dirty.extend(touched.iter().copied());
                        write_line(
                            &writer,
                            proto::mutate_response(id, touched.len(), &sess.graph),
                        )?;
                    }
                    Err(e) => {
                        write_line(
                            &writer,
                            proto::error_response(id, "bad-edit", &e.to_string()),
                        )?;
                    }
                }
            }
            Request::Load {
                id,
                format,
                data,
                last,
            } => {
                // A drain that began mid-upload resolves the upload with
                // the same typed rejection `submit` would give: the
                // buffer is dropped, the connection stays usable, and no
                // graph is parsed that nothing could ever run against.
                if service.is_draining() {
                    let rej = Rejection::ShuttingDown;
                    upload = None;
                    write_line(
                        &writer,
                        proto::error_response(id, proto::rejection_code(&rej), &rej.to_string()),
                    )?;
                    continue;
                }
                let up = upload.get_or_insert_with(|| Upload {
                    format: None,
                    data: String::new(),
                });
                if up.format.is_none() {
                    up.format = format;
                }
                up.data.push_str(&data);
                // The byte bound cuts a lying client off mid-stream:
                // the buffer is dropped, the connection lives on.
                if let Some(max_bytes) = service.config().max_upload_bytes {
                    if up.data.len() > max_bytes {
                        let rej = Rejection::UploadTooLarge {
                            bytes: up.data.len(),
                            max_bytes,
                        };
                        upload = None;
                        write_line(
                            &writer,
                            proto::error_response(
                                id,
                                proto::rejection_code(&rej),
                                &rej.to_string(),
                            ),
                        )?;
                        continue;
                    }
                }
                if !last {
                    write_line(&writer, proto::loading_response(id, up.data.len()))?;
                    continue;
                }
                let up = upload.take().expect("buffer exists: inserted above");
                let Some(fmt) = up.format.or_else(|| GraphFormat::sniff(&up.data)) else {
                    write_line(
                        &writer,
                        proto::error_response(
                            id,
                            "bad-graph",
                            "cannot determine graph format from content; pass \"format\"",
                        ),
                    )?;
                    continue;
                };
                let cfg = service.config();
                let limits = IngestLimits {
                    max_vertices: cfg.max_vertices,
                    max_edges: cfg.max_edges,
                };
                let line = match GraphSource::new(fmt)
                    .with_limits(limits)
                    .read(up.data.as_bytes())
                {
                    Ok(g) => {
                        let g = Arc::new(g);
                        session = Some(Session {
                            graph: Arc::clone(&g),
                            base: None,
                            dirty: BTreeSet::new(),
                        });
                        proto::load_response(id, fmt, &g)
                    }
                    // An admission-limit breach surfaces as the same
                    // typed rejection `submit` would produce, caught
                    // while parsing instead of after building the graph.
                    Err(e) => match e.limit_exceeded() {
                        Some(l) => {
                            let rej = Rejection::GraphTooLarge {
                                vertices: l.vertices,
                                edges: l.edges,
                                max_vertices: l.max_vertices,
                                max_edges: l.max_edges,
                            };
                            proto::error_response(id, proto::rejection_code(&rej), &rej.to_string())
                        }
                        None => proto::error_response(id, "bad-graph", &e.to_string()),
                    },
                };
                write_line(&writer, line)?;
            }
            Request::Recolor {
                id,
                spec,
                assignment,
            } => {
                // The incremental path repairs a *fixed* baseline spec;
                // letting the planner swap schemes between repairs would
                // silently discard the baseline it exists to reuse.
                let Some(spec) = spec.fixed() else {
                    write_line(
                        &writer,
                        proto::error_response(
                            id,
                            "bad-request",
                            "\"scheme\":\"auto\" is not supported by recolor: \
                             pick a fixed scheme for the incremental baseline",
                        ),
                    )?;
                    continue;
                };
                let Some(sess) = session.as_mut() else {
                    write_line(
                        &writer,
                        proto::error_response(
                            id,
                            "no-graph",
                            "no session graph: include \"graph\" in a mutate first",
                        ),
                    )?;
                    continue;
                };
                let fp = spec.fingerprint(&sess.graph);
                // Option equality via the spec fold over a zero graph
                // fingerprint: equal iff every output-relevant option is.
                let same_spec = sess
                    .base
                    .as_ref()
                    .is_some_and(|(s, _)| s.fingerprint_of(0) == spec.fingerprint_of(0));
                let line = if same_spec && sess.dirty.is_empty() {
                    let base = &sess.base.as_ref().unwrap().1;
                    proto::recolor_response(id, "session", 0, fp, base, assignment)
                } else if same_spec {
                    let base = Arc::clone(&sess.base.as_ref().unwrap().1);
                    let dirty: Vec<VertexId> = sess.dirty.iter().copied().collect();
                    match recolor_delta(&sess.graph, &base, &dirty, service.device(), &spec.opts) {
                        Ok(c) => {
                            let c = Arc::new(c);
                            sess.base = Some((spec, Arc::clone(&c)));
                            sess.dirty.clear();
                            proto::recolor_response(id, "delta", dirty.len(), fp, &c, assignment)
                        }
                        Err(e) => proto::error_response(id, "coloring-failed", &e.to_string()),
                    }
                } else {
                    match spec
                        .scheme
                        .try_color(&sess.graph, service.device(), &spec.opts)
                    {
                        Ok(c) => {
                            let c = Arc::new(c);
                            sess.base = Some((spec, Arc::clone(&c)));
                            sess.dirty.clear();
                            proto::recolor_response(id, "scratch", 0, fp, &c, assignment)
                        }
                        Err(e) => proto::error_response(id, "coloring-failed", &e.to_string()),
                    }
                };
                write_line(&writer, line)?;
            }
            Request::Shutdown { id } => {
                write_line(&writer, proto::ack_response(id, "draining"))?;
                break;
            }
            Request::Color {
                id,
                graph,
                spec,
                deadline_ms,
                assignment,
            } => {
                let graph = match graph {
                    // The session graph colors through the same service
                    // path as any other graph — admission control and
                    // the fingerprint-keyed cache included, so re-loads
                    // of identical bytes hit.
                    GraphSpec::Session => match session.as_ref() {
                        Some(s) => Arc::clone(&s.graph),
                        None => {
                            write_line(
                                &writer,
                                proto::error_response(
                                    id,
                                    "no-graph",
                                    "no session graph: send a \"load\" or \"mutate\" first",
                                ),
                            )?;
                            continue;
                        }
                    },
                    other => match lookup_graph(&mut graphs, resolve, other) {
                        Ok(g) => g,
                        Err(msg) => {
                            write_line(&writer, proto::error_response(id, "unknown-graph", &msg))?;
                            continue;
                        }
                    },
                };
                // `"scheme":"auto"` resolves here — after the graph is
                // known, so the profile is the real graph's — and the
                // *resolved* spec is submitted: the job is keyed, cached
                // and coalesced exactly as if the client had asked for
                // the plan's fields explicitly.
                let (spec, plan) = match spec.fixed() {
                    Some(job) => (job, None),
                    None => {
                        let slo = spec.slo.unwrap_or_default();
                        let plan = AutoColorer::new(slo).plan_for(&graph, &spec.opts);
                        let job = plan.spec(&spec.opts);
                        service.note_auto_planned();
                        (job, Some((slo, plan)))
                    }
                };
                let req = crate::service::JobRequest {
                    graph,
                    spec,
                    deadline: deadline_ms.map(Duration::from_millis),
                };
                match service.submit(req) {
                    Err(rej) => write_line(
                        &writer,
                        proto::error_response(id, proto::rejection_code(&rej), &rej.to_string()),
                    )?,
                    Ok(handle) => {
                        let writer = Arc::clone(&writer);
                        responders.push(thread::spawn(move || {
                            let line = match handle.wait() {
                                Ok(r) => proto::ok_response(
                                    id,
                                    &r,
                                    assignment,
                                    plan.as_ref().map(|(slo, p)| (*slo, p)),
                                ),
                                Err(e) => proto::error_response(
                                    id,
                                    proto::serve_error_code(&e),
                                    &e.to_string(),
                                ),
                            };
                            let mut w = writer.lock().unwrap();
                            let _ = w.write_all(line.as_bytes());
                            let _ = w.write_all(b"\n");
                            let _ = w.flush();
                        }));
                    }
                }
            }
        }
    }
    // Drain: every accepted handle resolves, then every responder has a
    // resolved handle to write out.
    let stats = service.shutdown();
    for r in responders {
        let _ = r.join();
    }
    Ok(stats)
}

//! The line-delimited JSON protocol: one request object per line in,
//! one response object per line out.
//!
//! Designed for external load generators (`netcat`, a script, the
//! `gcol-bench loadgen` harness): plain text, one message per line, no
//! framing beyond `\n`, every response carrying the request's `id` so
//! clients may pipeline.
//!
//! ## Requests
//!
//! ```text
//! {"op":"color","id":1,"graph":{"gen":"rmat-er","scale":12,"seed":5},
//!  "scheme":"T-base","backend":"native","shards":1,"seed":7,
//!  "block":128,"deadline_ms":2000,"assignment":false}
//! {"op":"color","id":2,"graph":{"r":[0,2,4],"c":[1,0,0,1]},"scheme":"D-ldg"}
//! {"op":"mutate","id":3,"graph":{"gen":"rmat-er","scale":12,"seed":5},
//!  "edits":[["+",0,3],["-",1,4]]}
//! {"op":"recolor","id":4,"scheme":"T-base","backend":"native"}
//! {"op":"load","id":5,"format":"dimacs","data":"p edge 3 3\ne 1 2\ne 2 3\ne 3 1\n"}
//! {"op":"load","id":6,"format":"mtx","data":"%%MatrixMarket…\n","last":false}
//! {"op":"stats","id":7}
//! {"op":"shutdown","id":8}
//! ```
//!
//! `op` defaults to `"color"`. Every field except `graph` is optional
//! and defaults to the service's [`gcol_core::ColorOptions`] defaults
//! (including `"exchange":"dense"|"delta"` for the sharded ghost wire
//! format — part of the cache fingerprint). Graphs come inline (`r`/`c`,
//! the CSR arrays of the paper's Fig. 2) or by generator name —
//! resolution of names is delegated to the embedding (the bench CLI
//! resolves the Table I suite names), keeping this crate free of
//! generator policy.
//!
//! `"scheme":"auto"` hands scheme/backend/shard/exchange selection to
//! the [`gcol_plan`] planner, optionally steered by
//! `"slo":"fastest-wall"|"fewest-colors"|"balanced"` (`slo` with a
//! fixed scheme is a parse error). The request's `backend` field then
//! names the *only* backend the planner may use and `shards` caps the
//! device budget. The server resolves the plan once the graph is known
//! and submits the concrete job — cache keys and coalescing behave
//! exactly as if the client had sent the resolved fields — and the
//! response carries a `"plan"` object echoing the decision:
//!
//! ```text
//! {"id":9,"ok":true,"plan":{"slo":"fastest-wall","scheme":"csrcolor",
//!  "backend":"simt","shards":1,"exchange":"delta",
//!  "predicted_ms":3.1,"predicted_colors":9.2}, …}
//! ```
//!
//! `mutate`/`recolor` are the incremental pair: `mutate` loads (or
//! edits) the connection's **session graph** — `edits` is an ordered
//! batch of `["+"|"-", u, v]` undirected edge inserts/deletes — and
//! accumulates the touched vertices as the session's dirty set;
//! `recolor` colors the session graph, repairing the previous result
//! through the dirty set when the request's options match the held
//! baseline (response `source` says which path ran: `"delta"`,
//! `"scratch"`, or `"session"` for an untouched baseline served as-is).
//!
//! `load` streams a real graph file *into* the session: `data` carries
//! the file text (MatrixMarket, DIMACS, METIS or edge list — `format`
//! names it, or the server sniffs the header), and `"last":false` marks
//! a non-final chunk so large files upload across several lines without
//! any one line ballooning. Chunks are acked
//! `{"ok":true,"status":"loading","bytes":N}`; the final chunk parses
//! the accumulated text under the service's admission limits and
//! installs the graph as the session graph, answering with its content
//! fingerprint, so a follow-up `{"op":"color","graph":"session"}` hits
//! the result cache exactly when the same bytes were loaded before.
//!
//! ## Responses
//!
//! ```text
//! {"id":1,"ok":true,"source":"cold","fingerprint":"93b1…","colors":11,
//!  "iterations":4,"modeled_ms":12.8,"queue_ms":0.1,"exec_ms":40.2,"total_ms":40.4}
//! {"id":1,"ok":false,"error":"queue-full","detail":"queue full (capacity 256)"}
//! ```
//!
//! `"assignment":true` adds the dense per-vertex color array to the
//! response (off by default: it is `n` integers).

use crate::json::{self, obj, Json};
use crate::service::{JobResponse, Rejection, ServeError, ServiceStats};
use gcol_core::{
    BackendKind, ColorOptions, Coloring, ExchangeKind, Fingerprint, JobSpec, Scheme, SchemeChoice,
};
use gcol_graph::edit::EdgeEdit;
use gcol_graph::io::GraphFormat;
use gcol_graph::Csr;
use gcol_plan::{Plan, Slo};
use gcol_simt::ExecMode;

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run (or fetch) a coloring.
    Color {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
        /// The graph, inline or by name.
        graph: GraphSpec,
        /// Scheme choice (possibly `"auto"`) + options to run.
        spec: SpecRequest,
        /// Optional deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Include the per-vertex color array in the response.
        assignment: bool,
    },
    /// Load and/or edit the session graph.
    Mutate {
        /// Correlation id.
        id: Option<u64>,
        /// Replaces the session graph before applying `edits` (clears
        /// any held baseline). Absent: edit the current session graph.
        graph: Option<GraphSpec>,
        /// Ordered undirected edge edits to apply.
        edits: Vec<EdgeEdit>,
    },
    /// Stream a graph file into the session (possibly chunked).
    Load {
        /// Correlation id.
        id: Option<u64>,
        /// Declared format; absent on the first chunk means the server
        /// sniffs the accumulated text's header on the final chunk.
        format: Option<GraphFormat>,
        /// This chunk's slice of the file text.
        data: String,
        /// `false` marks a non-final chunk (acked, not parsed yet).
        last: bool,
    },
    /// Color the session graph, incrementally when possible.
    Recolor {
        /// Correlation id.
        id: Option<u64>,
        /// Scheme + options to run (`"auto"` is rejected by the server:
        /// the incremental path repairs a fixed baseline spec).
        spec: SpecRequest,
        /// Include the per-vertex color array in the response.
        assignment: bool,
    },
    /// Return the service stats snapshot.
    Stats {
        /// Correlation id.
        id: Option<u64>,
    },
    /// Drain and stop the service.
    Shutdown {
        /// Correlation id.
        id: Option<u64>,
    },
}

/// A graph reference inside a request.
#[derive(Debug, Clone)]
pub enum GraphSpec {
    /// Inline CSR arrays.
    Inline(Csr),
    /// A named generated graph, resolved by the embedding.
    Named {
        /// Generator/suite name (e.g. `"rmat-er"`).
        name: String,
        /// log2-equivalent scale.
        scale: u32,
        /// Generator seed.
        seed: u64,
    },
    /// The connection's session graph (installed by `load`/`mutate`).
    Session,
}

impl Request {
    /// The correlation id, whatever the operation.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Color { id, .. }
            | Request::Mutate { id, .. }
            | Request::Load { id, .. }
            | Request::Recolor { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let id = v.get("id").and_then(Json::as_u64);
        match v.get("op").and_then(Json::as_str).unwrap_or("color") {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "color" => {
                let graph = parse_graph(v.get("graph").ok_or("missing \"graph\"")?)?;
                Ok(Request::Color {
                    id,
                    graph,
                    spec: parse_spec(&v)?,
                    deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
                    assignment: v.get("assignment").and_then(Json::as_bool).unwrap_or(false),
                })
            }
            "mutate" => Ok(Request::Mutate {
                id,
                graph: v.get("graph").map(parse_graph).transpose()?,
                edits: parse_edits(&v)?,
            }),
            "load" => {
                let data = v
                    .get("data")
                    .and_then(Json::as_str)
                    .ok_or("missing \"data\"")?
                    .to_string();
                let format = match v.get("format").and_then(Json::as_str) {
                    None => None,
                    Some(name) => Some(
                        GraphFormat::parse(name)
                            .ok_or_else(|| format!("unknown graph format {name:?}"))?,
                    ),
                };
                Ok(Request::Load {
                    id,
                    format,
                    data,
                    last: v.get("last").and_then(Json::as_bool).unwrap_or(true),
                })
            }
            "recolor" => Ok(Request::Recolor {
                id,
                spec: parse_spec(&v)?,
                assignment: v.get("assignment").and_then(Json::as_bool).unwrap_or(false),
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// The scheme + option fields of a `color`/`recolor` request, before the
/// server resolves `"auto"` against the actual graph. Under a fixed
/// scheme this is a [`JobSpec`] waiting to happen; under `"auto"` the
/// `opts` carry the request's *resource envelope* — the `backend` field
/// is the only backend the planner may use and `shards` is the device
/// budget — and the planner fills in scheme/backend/shards/exchange once
/// the graph (and so its profile) is known.
#[derive(Debug, Clone)]
pub struct SpecRequest {
    /// Fixed scheme, or `Auto` for planner resolution.
    pub choice: SchemeChoice,
    /// Planner objective; only meaningful (and only accepted) with
    /// `"scheme":"auto"`. `None` means [`Slo::default`].
    pub slo: Option<Slo>,
    /// Parsed options — the concrete options under a fixed scheme, the
    /// resource envelope under `auto`.
    pub opts: ColorOptions,
}

impl SpecRequest {
    /// The job spec, when the scheme is fixed.
    pub fn fixed(&self) -> Option<JobSpec> {
        self.choice.fixed().map(|scheme| JobSpec {
            scheme,
            opts: self.opts.clone(),
        })
    }
}

/// Parses the scheme + option fields shared by `color` and `recolor`.
fn parse_spec(v: &Json) -> Result<SpecRequest, String> {
    let choice = match v.get("scheme").and_then(Json::as_str) {
        None => SchemeChoice::Fixed(Scheme::TopoBase),
        Some(name) => name
            .parse::<SchemeChoice>()
            .map_err(|_| format!("unknown scheme {name:?}"))?,
    };
    let slo = match v.get("slo").and_then(Json::as_str) {
        None => None,
        Some(name) => {
            if choice != SchemeChoice::Auto {
                return Err("\"slo\" requires \"scheme\":\"auto\"".into());
            }
            Some(name.parse::<Slo>()?)
        }
    };
    let mut opts = ColorOptions::default();
    if let Some(b) = v.get("backend").and_then(Json::as_str) {
        opts.backend = b
            .parse::<BackendKind>()
            .map_err(|_| format!("unknown backend {b:?}"))?;
    }
    if let Some(s) = v.get("shards").and_then(Json::as_u64) {
        if s == 0 {
            return Err("\"shards\" must be >= 1".into());
        }
        opts.num_shards = s as usize;
    }
    if let Some(s) = v.get("seed").and_then(Json::as_u64) {
        opts.seed = s;
    }
    if let Some(b) = v.get("block").and_then(Json::as_u64) {
        opts.block_size = b as u32;
    }
    if let Some(h) = v.get("hashes").and_then(Json::as_u64) {
        opts.num_hashes = h as usize;
    }
    if let Some(m) = v.get("mode").and_then(Json::as_str) {
        opts.exec_mode = match m {
            "deterministic" | "det" => ExecMode::Deterministic,
            "parallel" | "par" => ExecMode::Parallel,
            other => return Err(format!("unknown exec mode {other:?}")),
        };
    }
    if let Some(x) = v.get("exchange").and_then(Json::as_str) {
        opts.exchange = x.parse::<ExchangeKind>()?;
    }
    Ok(SpecRequest { choice, slo, opts })
}

/// Parses the `"edits"` array: ordered `["+"|"-", u, v]` triples.
fn parse_edits(v: &Json) -> Result<Vec<EdgeEdit>, String> {
    let Some(arr) = v.get("edits") else {
        return Ok(Vec::new());
    };
    let arr = arr.as_arr().ok_or("\"edits\" must be an array")?;
    arr.iter()
        .map(|e| {
            let t = e
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or("each edit must be a [\"+\"|\"-\", u, v] triple")?;
            let endpoint = |x: &Json| {
                x.as_u64()
                    .filter(|&x| x <= u32::MAX as u64)
                    .map(|x| x as u32)
                    .ok_or_else(|| "edit endpoints must be u32".to_string())
            };
            let (u, w) = (endpoint(&t[1])?, endpoint(&t[2])?);
            match t[0].as_str() {
                Some("+") | Some("insert") => Ok(EdgeEdit::Insert(u, w)),
                Some("-") | Some("delete") => Ok(EdgeEdit::Delete(u, w)),
                _ => Err(format!(
                    "unknown edit op {:?} (expected \"+\" or \"-\")",
                    t[0]
                )),
            }
        })
        .collect()
}

fn parse_graph(v: &Json) -> Result<GraphSpec, String> {
    if v.as_str() == Some("session") {
        return Ok(GraphSpec::Session);
    }
    if let (Some(r), Some(c)) = (v.get("r"), v.get("c")) {
        let to_u32s = |a: &Json, what: &str| -> Result<Vec<u32>, String> {
            a.as_arr()
                .ok_or_else(|| format!("\"{what}\" must be an array"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .filter(|&x| x <= u32::MAX as u64)
                        .map(|x| x as u32)
                        .ok_or_else(|| format!("\"{what}\" entries must be u32"))
                })
                .collect()
        };
        let g = Csr::try_new(to_u32s(r, "r")?, to_u32s(c, "c")?)
            .map_err(|e| format!("invalid CSR arrays: {e:?}"))?;
        return Ok(GraphSpec::Inline(g));
    }
    if let Some(name) = v.get("gen").and_then(Json::as_str) {
        return Ok(GraphSpec::Named {
            name: name.to_string(),
            scale: v
                .get("scale")
                .and_then(Json::as_u64)
                .map(|s| s as u32)
                .unwrap_or(12),
            seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Err("\"graph\" needs inline {\"r\":…,\"c\":…}, {\"gen\":…} or \"session\"".into())
}

/// Renders the `"plan"` object echoed in responses to `"scheme":"auto"`
/// requests: the concrete plan the planner resolved to, plus its model
/// predictions — the client-visible proof of what actually ran (and the
/// exact fields to resend for a byte-identical explicit request).
pub fn plan_json(slo: Slo, plan: &Plan) -> Json {
    obj([
        ("slo", Json::Str(slo.name().into())),
        ("scheme", Json::Str(plan.scheme.name().into())),
        ("backend", Json::Str(plan.backend.name().into())),
        ("shards", Json::Num(plan.num_shards as f64)),
        ("exchange", Json::Str(plan.exchange.name().into())),
        ("predicted_ms", Json::Num(plan.predicted_ms)),
        ("predicted_colors", Json::Num(plan.predicted_colors)),
    ])
}

/// Renders the success response for a resolved job. `plan` is present
/// exactly when the request said `"scheme":"auto"`.
pub fn ok_response(
    id: Option<u64>,
    r: &JobResponse,
    assignment: bool,
    plan: Option<(Slo, &Plan)>,
) -> String {
    let coloring: &Coloring = &r.coloring;
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("source", Json::Str(r.source.name().into())),
        ("fingerprint", Json::Str(r.fingerprint.to_string())),
        ("scheme", Json::Str(coloring.scheme.name().into())),
        ("colors", Json::Num(coloring.num_colors as f64)),
        ("iterations", Json::Num(coloring.iterations as f64)),
        ("modeled_ms", Json::Num(coloring.total_ms())),
        ("queue_ms", Json::Num(r.queue_ms)),
        ("exec_ms", Json::Num(r.exec_ms)),
        ("total_ms", Json::Num(r.total_ms)),
    ]);
    with_id(&mut o, id);
    if let (Json::Obj(m), Some((slo, plan))) = (&mut o, plan) {
        m.insert("plan".into(), plan_json(slo, plan));
    }
    if assignment {
        if let Json::Obj(m) = &mut o {
            m.insert(
                "assignment".into(),
                Json::Arr(
                    coloring
                        .colors
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            );
        }
    }
    o.to_string()
}

/// Renders the response to a `mutate`: how many vertices the batch
/// touched and the post-edit graph identity (content fingerprint + size)
/// — the client-visible proof that cache keys rolled over.
pub fn mutate_response(id: Option<u64>, touched: usize, g: &Csr) -> String {
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("touched", Json::Num(touched as f64)),
        (
            "graph_fingerprint",
            Json::Str(format!("{:016x}", g.content_fingerprint())),
        ),
        ("vertices", Json::Num(g.num_vertices() as f64)),
        ("edges", Json::Num(g.num_edges() as f64)),
    ]);
    with_id(&mut o, id);
    o.to_string()
}

/// Renders the response to a `recolor`. `source` is `"delta"` (dirty-set
/// repair of the held baseline), `"scratch"` (full rerun) or
/// `"session"` (clean baseline served as held); `repaired` is the dirty
/// set size a delta repair consumed (0 otherwise).
pub fn recolor_response(
    id: Option<u64>,
    source: &str,
    repaired: usize,
    fingerprint: Fingerprint,
    coloring: &Coloring,
    assignment: bool,
) -> String {
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("source", Json::Str(source.into())),
        ("repaired", Json::Num(repaired as f64)),
        ("fingerprint", Json::Str(fingerprint.to_string())),
        ("scheme", Json::Str(coloring.scheme.name().into())),
        ("colors", Json::Num(coloring.num_colors as f64)),
        ("iterations", Json::Num(coloring.iterations as f64)),
        ("modeled_ms", Json::Num(coloring.total_ms())),
    ]);
    with_id(&mut o, id);
    if assignment {
        if let Json::Obj(m) = &mut o {
            m.insert(
                "assignment".into(),
                Json::Arr(
                    coloring
                        .colors
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            );
        }
    }
    o.to_string()
}

/// Renders the final response to a `load`: the resolved format and the
/// parsed graph's identity (content fingerprint + size) — the same
/// identity `mutate` reports, and the key under which `color` on the
/// session graph caches.
pub fn load_response(id: Option<u64>, format: GraphFormat, g: &Csr) -> String {
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("status", Json::Str("loaded".into())),
        ("format", Json::Str(format.name().into())),
        (
            "graph_fingerprint",
            Json::Str(format!("{:016x}", g.content_fingerprint())),
        ),
        ("vertices", Json::Num(g.num_vertices() as f64)),
        ("edges", Json::Num(g.num_edges() as f64)),
    ]);
    with_id(&mut o, id);
    o.to_string()
}

/// Renders the ack for a non-final upload chunk: bytes buffered so far.
pub fn loading_response(id: Option<u64>, bytes: usize) -> String {
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("status", Json::Str("loading".into())),
        ("bytes", Json::Num(bytes as f64)),
    ]);
    with_id(&mut o, id);
    o.to_string()
}

/// Renders a positive acknowledgement (control ops with no payload).
pub fn ack_response(id: Option<u64>, status: &str) -> String {
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("status", Json::Str(status.into())),
    ]);
    with_id(&mut o, id);
    o.to_string()
}

/// Renders an error response. `error` is a stable machine-readable code,
/// `detail` the human text.
pub fn error_response(id: Option<u64>, error: &str, detail: &str) -> String {
    let mut o = obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(error.into())),
        ("detail", Json::Str(detail.into())),
    ]);
    with_id(&mut o, id);
    o.to_string()
}

/// The stable error code for an admission rejection.
pub fn rejection_code(r: &Rejection) -> &'static str {
    match r {
        Rejection::QueueFull { .. } => "queue-full",
        Rejection::GraphTooLarge { .. } => "graph-too-large",
        Rejection::UploadTooLarge { .. } => "upload-too-large",
        Rejection::ShuttingDown => "shutting-down",
    }
}

/// The stable error code for a completion failure.
pub fn serve_error_code(e: &ServeError) -> &'static str {
    match e {
        ServeError::DeadlineExceeded => "deadline-exceeded",
        ServeError::Coloring(_) => "coloring-failed",
    }
}

/// Renders the stats snapshot response.
pub fn stats_response(id: Option<u64>, s: &ServiceStats) -> String {
    let mut o = obj([
        ("ok", Json::Bool(true)),
        ("submitted", Json::Num(s.submitted as f64)),
        ("accepted", Json::Num(s.accepted as f64)),
        ("executions", Json::Num(s.executions as f64)),
        ("cache_hits", Json::Num(s.cache_hits as f64)),
        ("coalesced", Json::Num(s.coalesced as f64)),
        ("auto_planned", Json::Num(s.auto_planned as f64)),
        (
            "rejected_queue_full",
            Json::Num(s.rejected_queue_full as f64),
        ),
        ("rejected_too_large", Json::Num(s.rejected_too_large as f64)),
        ("rejected_shutdown", Json::Num(s.rejected_shutdown as f64)),
        ("deadline_exceeded", Json::Num(s.deadline_exceeded as f64)),
        ("cache_entries", Json::Num(s.cache_entries as f64)),
        ("cache_evictions", Json::Num(s.cache_evictions as f64)),
        ("queued", Json::Num(s.queued as f64)),
        ("p50_ms", Json::Num(s.p50_ms)),
        ("p95_ms", Json::Num(s.p95_ms)),
        ("p99_ms", Json::Num(s.p99_ms)),
    ]);
    with_id(&mut o, id);
    o.to_string()
}

fn with_id(o: &mut Json, id: Option<u64>) {
    if let (Json::Obj(m), Some(id)) = (o, id) {
        m.insert("id".into(), Json::Num(id as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_color_request() {
        let r = Request::parse(
            r#"{"id":7,"graph":{"r":[0,2,4],"c":[1,0,0,1]},"scheme":"D-base","backend":"native","seed":3,"deadline_ms":100}"#,
        )
        .unwrap();
        match r {
            Request::Color {
                id,
                graph: GraphSpec::Inline(g),
                spec,
                deadline_ms,
                assignment,
            } => {
                assert_eq!(id, Some(7));
                assert_eq!(g.num_vertices(), 2);
                assert_eq!(spec.choice, SchemeChoice::Fixed(Scheme::DataBase));
                assert_eq!(spec.fixed().map(|j| j.scheme), Some(Scheme::DataBase));
                assert_eq!(spec.opts.backend, BackendKind::Native);
                assert_eq!(spec.opts.seed, 3);
                assert_eq!(deadline_ms, Some(100));
                assert!(!assignment);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_named_graph_and_defaults() {
        let r = Request::parse(r#"{"graph":{"gen":"rmat-er","scale":10,"seed":5}}"#).unwrap();
        match r {
            Request::Color {
                id,
                graph: GraphSpec::Named { name, scale, seed },
                spec,
                ..
            } => {
                assert_eq!(id, None);
                assert_eq!((name.as_str(), scale, seed), ("rmat-er", 10, 5));
                assert_eq!(spec.choice, SchemeChoice::Fixed(Scheme::TopoBase));
                assert_eq!(spec.opts.backend, BackendKind::Simt);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_exchange_option() {
        for (wire, kind) in [
            ("dense", ExchangeKind::Dense),
            ("delta", ExchangeKind::Delta),
        ] {
            let line = format!(r#"{{"graph":{{"r":[0,2,4],"c":[1,0,0,1]}},"exchange":"{wire}"}}"#);
            match Request::parse(&line).unwrap() {
                Request::Color { spec, .. } => assert_eq!(spec.opts.exchange, kind),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        assert!(
            Request::parse(r#"{"graph":{"r":[0,0],"c":[]},"exchange":"sparse"}"#).is_err(),
            "unknown exchange kinds must be rejected"
        );
    }

    #[test]
    fn parses_auto_scheme_and_slo() {
        let r = Request::parse(
            r#"{"graph":{"r":[0,2,4],"c":[1,0,0,1]},"scheme":"auto","slo":"fewest-colors","backend":"native","shards":2}"#,
        )
        .unwrap();
        match r {
            Request::Color { spec, .. } => {
                assert_eq!(spec.choice, SchemeChoice::Auto);
                assert!(spec.fixed().is_none(), "auto has no fixed JobSpec");
                assert_eq!(spec.slo, Some(Slo::FewestColors));
                // The envelope fields still parse: backend is the only
                // allowed backend, shards the budget.
                assert_eq!(spec.opts.backend, BackendKind::Native);
                assert_eq!(spec.opts.num_shards, 2);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // "slo" defaults to None (server applies Slo::default()).
        match Request::parse(r#"{"graph":{"r":[0,0],"c":[]},"scheme":"auto"}"#).unwrap() {
            Request::Color { spec, .. } => {
                assert_eq!(spec.choice, SchemeChoice::Auto);
                assert_eq!(spec.slo, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            // "slo" is meaningless without "scheme":"auto" — reject it
            // rather than silently ignoring a client intent.
            r#"{"graph":{"r":[0,0],"c":[]},"slo":"fastest-wall"}"#,
            r#"{"graph":{"r":[0,0],"c":[]},"scheme":"T-base","slo":"balanced"}"#,
            r#"{"graph":{"r":[0,0],"c":[]},"scheme":"auto","slo":"quickest"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn renders_the_plan_object() {
        let plan = Plan {
            scheme: Scheme::CsrColor,
            backend: BackendKind::Simt,
            num_shards: 2,
            exchange: ExchangeKind::Delta,
            predicted_ms: 12.5,
            predicted_colors: 9.3,
        };
        let v = plan_json(Slo::FastestWall, &plan);
        assert_eq!(v.get("slo").and_then(Json::as_str), Some("fastest-wall"));
        assert_eq!(v.get("scheme").and_then(Json::as_str), Some("csrcolor"));
        assert_eq!(v.get("backend").and_then(Json::as_str), Some("simt"));
        assert_eq!(v.get("shards").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("exchange").and_then(Json::as_str), Some("delta"));
        assert!(v.get("predicted_ms").is_some() && v.get("predicted_colors").is_some());
    }

    #[test]
    fn parses_mutate_and_recolor() {
        match Request::parse(
            r#"{"op":"mutate","id":9,"edits":[["+",0,3],["-",1,4],["insert",2,0]]}"#,
        )
        .unwrap()
        {
            Request::Mutate { id, graph, edits } => {
                assert_eq!(id, Some(9));
                assert!(graph.is_none());
                assert_eq!(
                    edits,
                    vec![
                        EdgeEdit::Insert(0, 3),
                        EdgeEdit::Delete(1, 4),
                        EdgeEdit::Insert(2, 0)
                    ]
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(r#"{"op":"mutate","graph":{"gen":"rmat","scale":6,"seed":2}}"#)
            .unwrap()
        {
            Request::Mutate { graph, edits, .. } => {
                assert!(matches!(graph, Some(GraphSpec::Named { .. })));
                assert!(edits.is_empty());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(
            r#"{"op":"recolor","id":2,"scheme":"D-ldg","backend":"native","assignment":true}"#,
        )
        .unwrap()
        {
            Request::Recolor {
                id,
                spec,
                assignment,
            } => {
                assert_eq!(id, Some(2));
                assert_eq!(spec.choice, SchemeChoice::Fixed(Scheme::DataLdg));
                assert_eq!(spec.opts.backend, BackendKind::Native);
                assert!(assignment);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            r#"{"op":"mutate","edits":[["*",0,1]]}"#,
            r#"{"op":"mutate","edits":[["+",0]]}"#,
            r#"{"op":"mutate","edits":[["+",0,99999999999]]}"#,
            r#"{"op":"mutate","edits":"nope"}"#,
            r#"{"op":"recolor","scheme":"nope"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_load_and_session_graph() {
        match Request::parse(r#"{"op":"load","id":4,"format":"dimacs","data":"p edge 1 0\n"}"#)
            .unwrap()
        {
            Request::Load {
                id,
                format,
                data,
                last,
            } => {
                assert_eq!(id, Some(4));
                assert_eq!(format, Some(GraphFormat::Dimacs));
                assert_eq!(data, "p edge 1 0\n");
                assert!(last, "\"last\" defaults to true");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(r#"{"op":"load","data":"1 0\n","last":false}"#).unwrap() {
            Request::Load { format, last, .. } => {
                assert_eq!(format, None, "format is sniffed when absent");
                assert!(!last);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(r#"{"op":"color","graph":"session","scheme":"D-base"}"#).unwrap() {
            Request::Color { graph, spec, .. } => {
                assert!(matches!(graph, GraphSpec::Session));
                assert_eq!(spec.choice, SchemeChoice::Fixed(Scheme::DataBase));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in [
            r#"{"op":"load"}"#,
            r#"{"op":"load","data":"x","format":"tsv"}"#,
            r#"{"op":"color","graph":"sess"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn renders_load_responses() {
        let g = Csr::try_new(vec![0, 1, 2], vec![1, 0]).unwrap();
        let line = load_response(Some(4), GraphFormat::Metis, &g);
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("status").and_then(Json::as_str), Some("loaded"));
        assert_eq!(v.get("format").and_then(Json::as_str), Some("metis"));
        assert_eq!(
            v.get("graph_fingerprint").and_then(Json::as_str),
            Some(format!("{:016x}", g.content_fingerprint()).as_str())
        );
        assert_eq!(v.get("vertices").and_then(Json::as_u64), Some(2));
        let ack = crate::json::parse(&loading_response(None, 512)).unwrap();
        assert_eq!(ack.get("status").and_then(Json::as_str), Some("loading"));
        assert_eq!(ack.get("bytes").and_then(Json::as_u64), Some(512));
    }

    #[test]
    fn parses_control_ops() {
        assert!(matches!(
            Request::parse(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"shutdown","id":1}"#).unwrap(),
            Request::Shutdown { id: Some(1) }
        ));
    }

    #[test]
    fn rejects_bad_requests() {
        for line in [
            "",
            "{}",
            r#"{"op":"color"}"#,
            r#"{"graph":{"gen":1}}"#,
            r#"{"graph":{"r":[0],"c":[]},"scheme":"nope"}"#,
            r#"{"graph":{"r":[0,1],"c":[9]}}"#,
            r#"{"graph":{"r":[0,0],"c":[]},"shards":0}"#,
            r#"{"op":"fly"}"#,
        ] {
            assert!(Request::parse(line).is_err(), "{line:?} should fail");
        }
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let err = error_response(Some(3), "queue-full", "queue full (capacity 1)");
        assert!(!err.contains('\n'));
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("queue-full"));
    }
}

//! The coloring service: a worker pool over a bounded admission queue,
//! with request coalescing, a fingerprint-keyed result cache and
//! graceful drain on shutdown.
//!
//! ## Life of a request
//!
//! ```text
//!  submit ──► admission control ──► cache ──► coalesce ──► queue ──► worker pool
//!               │                    │           │            │          │
//!               ▼                    ▼           ▼            ▼          ▼
//!        typed Rejection      instant hit   attach to    bounded    Scheme::try_color
//!        (queue-full /                      in-flight    FIFO       on the job's own
//!         graph-too-large /                 execution               backend (simt /
//!         shutting-down)                                            native / sharded)
//! ```
//!
//! Invariants the tests pin down:
//!
//! * **No accepted job is ever dropped.** Every [`JobHandle`] the
//!   service hands out resolves — with a [`JobResponse`] or a typed
//!   [`ServeError`] — even across [`Service::shutdown`], which drains
//!   the queue instead of discarding it. Rejection happens only at
//!   submission, and only as a typed [`Rejection`].
//! * **Serving never changes results.** A job's coloring — cold, served
//!   from cache, or attached to a coalesced execution — is bit-identical
//!   to `Scheme::try_color` called directly with the same graph and
//!   options, because the cache key ([`JobSpec::fingerprint`]) covers
//!   every option that can influence the output.
//! * **One execution per fingerprint in flight.** Duplicate submissions
//!   attach to the running execution and share its result; the queue
//!   holds distinct fingerprints only, so a duplicate never consumes a
//!   second queue slot.

use crate::cache::ResultCache;
use crate::sync::{thread, Arc, Condvar, Mutex};
use gcol_core::{ColorError, Coloring, Fingerprint, JobSpec};
use gcol_graph::Csr;
use gcol_simt::Device;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing colorings. `0` is the single-threaded
    /// test/embedding mode: nothing runs until [`Service::shutdown`] (or
    /// [`Service::drain`]) processes the queue on the calling thread.
    pub num_workers: usize,
    /// Bounded submission queue: distinct in-flight executions beyond
    /// this are rejected with [`Rejection::QueueFull`]. Cache hits and
    /// coalesced duplicates never consume a slot.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Admission bound on graph size ([`Rejection::GraphTooLarge`]).
    pub max_vertices: Option<usize>,
    /// Admission bound on stored directed edges.
    pub max_edges: Option<usize>,
    /// Bound on the byte size of a streamed `load` upload, enforced
    /// chunk by chunk while the text accumulates — a lying client is cut
    /// off mid-stream ([`Rejection::UploadTooLarge`]) before the parser
    /// ever sees the payload.
    pub max_upload_bytes: Option<usize>,
    /// Device model the simt-backend jobs execute on.
    pub device: Device,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            num_workers: 2,
            queue_capacity: 256,
            cache_capacity: 128,
            max_vertices: None,
            max_edges: None,
            max_upload_bytes: None,
            device: Device::k20c(),
        }
    }
}

/// A coloring request: a shared graph plus the job spec to run on it.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The graph (shared; the service never copies it).
    pub graph: Arc<Csr>,
    /// Scheme + options; determines the fingerprint.
    pub spec: JobSpec,
    /// Optional deadline, relative to submission. A job whose deadline
    /// has passed when a worker would start it (or when its coalesced
    /// execution completes) resolves with [`ServeError::DeadlineExceeded`]
    /// instead of running/receiving a result.
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// A request with no deadline.
    pub fn new(graph: Arc<Csr>, spec: JobSpec) -> Self {
        Self {
            graph,
            spec,
            deadline: None,
        }
    }
}

/// Typed admission-control rejection: the request was never accepted and
/// owns no queue slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is at capacity.
    QueueFull {
        /// The configured capacity it was at.
        capacity: usize,
    },
    /// The graph exceeds the configured admission bounds.
    GraphTooLarge {
        /// Vertices in the rejected graph.
        vertices: usize,
        /// Stored directed edges in the rejected graph.
        edges: usize,
        /// The configured vertex bound, if that is what tripped.
        max_vertices: Option<usize>,
        /// The configured edge bound, if that is what tripped.
        max_edges: Option<usize>,
    },
    /// A streamed graph upload exceeded the configured byte bound
    /// before it finished arriving.
    UploadTooLarge {
        /// Bytes accumulated when the bound tripped.
        bytes: usize,
        /// The configured [`ServiceConfig::max_upload_bytes`].
        max_bytes: usize,
    },
    /// The service is draining after [`Service::shutdown`] began.
    ShuttingDown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::GraphTooLarge {
                vertices, edges, ..
            } => write!(f, "graph too large ({vertices} vertices, {edges} edges)"),
            Rejection::UploadTooLarge { bytes, max_bytes } => {
                write!(f, "upload too large ({bytes} bytes, cap {max_bytes})")
            }
            Rejection::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Why an *accepted* job failed to produce a coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The job's deadline passed before a result could be delivered.
    DeadlineExceeded,
    /// The scheme itself failed (non-convergence, invalid options).
    Coloring(ColorError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Coloring(e) => write!(f, "coloring failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a job's result was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// A worker executed this job.
    Cold,
    /// Served from the result cache at submission.
    CacheHit,
    /// Attached to an identical in-flight execution.
    Coalesced,
}

impl ResultSource {
    /// Wire/report name.
    pub fn name(&self) -> &'static str {
        match self {
            ResultSource::Cold => "cold",
            ResultSource::CacheHit => "cache-hit",
            ResultSource::Coalesced => "coalesced",
        }
    }
}

/// A finished job: the shared coloring plus per-job metrics.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// The result (shared with the cache and any coalesced twins).
    pub coloring: Arc<Coloring>,
    /// Cold, cache hit, or coalesced.
    pub source: ResultSource,
    /// The cache/coalescing key of this job.
    pub fingerprint: Fingerprint,
    /// Time from submission to execution start (0 for cache hits).
    pub queue_ms: f64,
    /// Execution wall time of the run that produced the coloring
    /// (0 for cache hits; shared for coalesced jobs).
    pub exec_ms: f64,
    /// Time from submission to resolution.
    pub total_ms: f64,
}

/// Waitable handle to an accepted job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    cell: Arc<JobCell>,
}

impl JobHandle {
    /// Blocks until the job resolves.
    pub fn wait(&self) -> Result<JobResponse, ServeError> {
        let mut done = self.cell.done.lock().unwrap();
        while done.is_none() {
            done = self.cell.cv.wait(done).unwrap();
        }
        done.clone().unwrap()
    }

    /// The result if the job already resolved, without blocking.
    pub fn try_wait(&self) -> Option<Result<JobResponse, ServeError>> {
        self.cell.done.lock().unwrap().clone()
    }

    /// This job's fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.cell.fingerprint
    }
}

#[derive(Debug)]
struct JobCell {
    fingerprint: Fingerprint,
    submitted: Instant,
    deadline: Option<Instant>,
    done: Mutex<Option<Result<JobResponse, ServeError>>>,
    cv: Condvar,
}

impl JobCell {
    fn resolve(&self, r: Result<JobResponse, ServeError>) {
        let mut done = self.done.lock().unwrap();
        debug_assert!(done.is_none(), "job resolved twice");
        *done = Some(r);
        self.cv.notify_all();
    }
}

/// One queued/running execution; duplicates attach as extra waiters.
struct Execution {
    graph: Arc<Csr>,
    spec: JobSpec,
    waiters: Vec<Waiter>,
}

struct Waiter {
    cell: Arc<JobCell>,
    source: ResultSource,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    accepted: u64,
    rejected_queue_full: u64,
    rejected_too_large: u64,
    rejected_shutdown: u64,
    cache_hits: u64,
    coalesced: u64,
    auto_planned: u64,
    executions: u64,
    skipped_executions: u64,
    completed_ok: u64,
    completed_err: u64,
    deadline_exceeded: u64,
    queue_wait_ms_sum: f64,
    exec_ms_sum: f64,
}

struct State {
    queue: VecDeque<Fingerprint>,
    inflight: HashMap<u128, Execution>,
    cache: ResultCache,
    counters: Counters,
    draining: bool,
    latencies_ms: Vec<f64>,
}

/// Bounded reservoir for latency percentiles: plenty for any trace the
/// bench harness replays, without growing unboundedly in a long-lived
/// process (later samples beyond the cap are dropped — a snapshot, not
/// a sketch).
const MAX_LATENCY_SAMPLES: usize = 1 << 16;

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    config: ServiceConfig,
}

/// The service. See the module docs for the request lifecycle.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// Cloneable handle that can observe and begin a drain from outside the
/// thread that owns the [`Service`] — a signal handler, or a test
/// driving [`crate::serve_lines`] (which consumes the service by value).
#[derive(Clone)]
pub struct DrainController {
    inner: Arc<Inner>,
}

impl DrainController {
    /// Same as [`Service::begin_drain`].
    pub fn begin_drain(&self) {
        begin_drain(&self.inner);
    }

    /// Whether a drain has begun (new submissions are being rejected).
    pub fn is_draining(&self) -> bool {
        self.inner.state.lock().unwrap().draining
    }
}

impl Service {
    /// Starts the worker pool (if `config.num_workers > 0`) and returns
    /// the running service.
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::named(
                "serve-state",
                State {
                    queue: VecDeque::new(),
                    inflight: HashMap::new(),
                    cache: ResultCache::new(config.cache_capacity),
                    counters: Counters::default(),
                    draining: false,
                    latencies_ms: Vec::new(),
                },
            ),
            work_cv: Condvar::new(),
            config,
        });
        let workers = (0..inner.config.num_workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("gcol-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits a job. On acceptance the returned handle *will* resolve;
    /// on rejection the request had no effect.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, Rejection> {
        let cfg = &self.inner.config;
        let (n, m) = (req.graph.num_vertices(), req.graph.num_edges());
        let too_large =
            cfg.max_vertices.is_some_and(|b| n > b) || cfg.max_edges.is_some_and(|b| m > b);
        // Fingerprint outside the lock: hashing a large graph is the
        // most expensive step of admission.
        let fp = req.spec.fingerprint(&req.graph);
        let now = Instant::now();
        let cell = Arc::new(JobCell {
            fingerprint: fp,
            submitted: now,
            deadline: req.deadline.map(|d| now + d),
            done: Mutex::named("job-cell", None),
            cv: Condvar::new(),
        });

        let mut st = self.inner.state.lock().unwrap();
        st.counters.submitted += 1;
        if st.draining {
            st.counters.rejected_shutdown += 1;
            return Err(Rejection::ShuttingDown);
        }
        if too_large {
            st.counters.rejected_too_large += 1;
            return Err(Rejection::GraphTooLarge {
                vertices: n,
                edges: m,
                max_vertices: cfg.max_vertices.filter(|&b| n > b),
                max_edges: cfg.max_edges.filter(|&b| m > b),
            });
        }
        if let Some(hit) = st.cache.get(fp) {
            st.counters.accepted += 1;
            st.counters.cache_hits += 1;
            let total_ms = now.elapsed().as_secs_f64() * 1e3;
            st.latencies_push(total_ms);
            drop(st);
            cell.resolve(Ok(JobResponse {
                coloring: hit,
                source: ResultSource::CacheHit,
                fingerprint: fp,
                queue_ms: 0.0,
                exec_ms: 0.0,
                total_ms,
            }));
            return Ok(JobHandle { cell });
        }
        if let Some(exec) = st.inflight.get_mut(&fp.0) {
            exec.waiters.push(Waiter {
                cell: Arc::clone(&cell),
                source: ResultSource::Coalesced,
            });
            st.counters.accepted += 1;
            st.counters.coalesced += 1;
            return Ok(JobHandle { cell });
        }
        if st.queue.len() >= cfg.queue_capacity {
            st.counters.rejected_queue_full += 1;
            return Err(Rejection::QueueFull {
                capacity: cfg.queue_capacity,
            });
        }
        st.counters.accepted += 1;
        st.inflight.insert(
            fp.0,
            Execution {
                graph: req.graph,
                spec: req.spec,
                waiters: vec![Waiter {
                    cell: Arc::clone(&cell),
                    source: ResultSource::Cold,
                }],
            },
        );
        st.queue.push_back(fp);
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(JobHandle { cell })
    }

    /// Processes queued executions on the calling thread until the queue
    /// is empty. The embedding/test-mode complement to the worker pool
    /// (harmless but usually pointless when workers are running).
    pub fn drain(&self) {
        while process_one(&self.inner, false) {}
    }

    /// Stops accepting new submissions — they are rejected with
    /// [`Rejection::ShuttingDown`] — without blocking. Already-accepted
    /// jobs keep executing; [`Service::shutdown`] completes the drain.
    pub fn begin_drain(&self) {
        begin_drain(&self.inner);
    }

    /// Whether a drain has begun. The protocol server checks this so an
    /// in-progress `load` upload resolves with a typed rejection instead
    /// of parsing a graph no job could ever be submitted against.
    pub fn is_draining(&self) -> bool {
        self.inner.state.lock().unwrap().draining
    }

    /// A handle for beginning/observing drain after the service itself
    /// has been moved (e.g. into [`crate::serve_lines`]).
    pub fn controller(&self) -> DrainController {
        DrainController {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stops accepting new jobs, drains every queued and in-flight
    /// execution, joins the workers and returns the final stats. Every
    /// handle accepted before the call resolves.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // num_workers == 0 (or none survived): drain inline.
        self.drain();
        self.stats()
    }

    /// The device model jobs execute on. The protocol server's
    /// session-level incremental recolor path runs on the same device so
    /// delta and from-scratch timelines stay comparable.
    pub fn device(&self) -> &Device {
        &self.inner.config.device
    }

    /// The configuration the service was started with. The protocol
    /// server reads the admission bounds from here so `load` uploads are
    /// rejected during parsing with the same limits `submit` would apply
    /// to the finished graph.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Records one `"scheme":"auto"` request the planner resolved to a
    /// concrete plan. Counted by the protocol server *before* `submit`
    /// so the submitted job itself stays indistinguishable from an
    /// explicit one — same fingerprint, same cache key.
    pub fn note_auto_planned(&self) {
        self.inner.state.lock().unwrap().counters.auto_planned += 1;
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.inner.state.lock().unwrap();
        let c = &st.counters;
        let (_, _, cache_evictions) = st.cache.counters();
        let mut lat = st.latencies_ms.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return f64::NAN;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx]
        };
        ServiceStats {
            submitted: c.submitted,
            accepted: c.accepted,
            rejected_queue_full: c.rejected_queue_full,
            rejected_too_large: c.rejected_too_large,
            rejected_shutdown: c.rejected_shutdown,
            cache_hits: c.cache_hits,
            coalesced: c.coalesced,
            auto_planned: c.auto_planned,
            executions: c.executions,
            skipped_executions: c.skipped_executions,
            completed_ok: c.completed_ok,
            completed_err: c.completed_err,
            deadline_exceeded: c.deadline_exceeded,
            cache_entries: st.cache.len(),
            cache_evictions,
            queued: st.queue.len(),
            avg_queue_wait_ms: if c.executions == 0 {
                0.0
            } else {
                c.queue_wait_ms_sum / c.executions as f64
            },
            avg_exec_ms: if c.executions == 0 {
                0.0
            } else {
                c.exec_ms_sum / c.executions as f64
            },
            latency_samples: lat.len(),
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
        }
    }
}

fn begin_drain(inner: &Inner) {
    {
        let mut st = inner.state.lock().unwrap();
        st.draining = true;
    }
    inner.work_cv.notify_all();
}

impl State {
    fn latencies_push(&mut self, ms: f64) {
        if self.latencies_ms.len() < MAX_LATENCY_SAMPLES {
            self.latencies_ms.push(ms);
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        {
            let mut st = inner.state.lock().unwrap();
            while st.queue.is_empty() && !st.draining {
                st = inner.work_cv.wait(st).unwrap();
            }
            if st.queue.is_empty() && st.draining {
                return;
            }
        }
        process_one(inner, true);
    }
}

/// Dequeues and runs one execution. Returns false if the queue was empty.
/// `from_worker` only affects nothing today but keeps the call sites
/// honest about who is draining.
fn process_one(inner: &Inner, _from_worker: bool) -> bool {
    let started = Instant::now();
    let (fp, graph, spec, queue_wait_ms) = {
        let mut st = inner.state.lock().unwrap();
        let Some(fp) = st.queue.pop_front() else {
            return false;
        };
        // Resolve waiters whose deadline passed while queued; if none
        // remain, skip the execution entirely.
        let now = Instant::now();
        let (expired, first_wait_ms, none_alive) = {
            let exec = st.inflight.get_mut(&fp.0).expect("queued fp has execution");
            let (expired, alive): (Vec<Waiter>, Vec<Waiter>) = exec
                .waiters
                .drain(..)
                .partition(|w| w.cell.deadline.is_some_and(|d| now > d));
            exec.waiters = alive;
            let first_wait_ms = exec
                .waiters
                .first()
                .map(|w| (now - w.cell.submitted).as_secs_f64() * 1e3)
                .unwrap_or(0.0);
            (expired, first_wait_ms, exec.waiters.is_empty())
        };
        st.counters.deadline_exceeded += expired.len() as u64;
        if none_alive {
            st.counters.skipped_executions += 1;
            st.inflight.remove(&fp.0);
            drop(st);
            for w in expired {
                w.cell.resolve(Err(ServeError::DeadlineExceeded));
            }
            return true;
        }
        let exec = st.inflight.get(&fp.0).expect("queued fp has execution");
        let graph = Arc::clone(&exec.graph);
        let spec = exec.spec.clone();
        drop(st);
        for w in expired {
            w.cell.resolve(Err(ServeError::DeadlineExceeded));
        }
        (fp, graph, spec, first_wait_ms)
    };

    let result = spec
        .scheme
        .try_color(&graph, &inner.config.device, &spec.opts);
    let exec_ms = started.elapsed().as_secs_f64() * 1e3;

    let waiters = {
        let mut st = inner.state.lock().unwrap();
        let exec = st.inflight.remove(&fp.0).expect("running fp has execution");
        st.counters.executions += 1;
        st.counters.queue_wait_ms_sum += queue_wait_ms;
        st.counters.exec_ms_sum += exec_ms;
        let shared = match &result {
            Ok(coloring) => {
                let shared = Arc::new(coloring.clone());
                st.counters.completed_ok += 1;
                st.cache.insert(fp, Arc::clone(&shared));
                Some(shared)
            }
            Err(_) => {
                // Failed runs are not cached: a later identical request
                // may succeed (e.g. under a different max_iterations,
                // which the fingerprint deliberately ignores).
                st.counters.completed_err += 1;
                None
            }
        };
        let now = Instant::now();
        let mut resolved = Vec::with_capacity(exec.waiters.len());
        for w in exec.waiters {
            let deadline_hit = w.cell.deadline.is_some_and(|d| now > d);
            if deadline_hit {
                st.counters.deadline_exceeded += 1;
            }
            let total_ms = (now - w.cell.submitted).as_secs_f64() * 1e3;
            if !deadline_hit && shared.is_some() {
                st.latencies_push(total_ms);
            }
            resolved.push((w, deadline_hit, total_ms));
        }
        drop(st);
        resolved
            .into_iter()
            .map(|(w, deadline_hit, total_ms)| {
                let r = if deadline_hit {
                    Err(ServeError::DeadlineExceeded)
                } else {
                    match (&shared, &result) {
                        (Some(coloring), _) => Ok(JobResponse {
                            coloring: Arc::clone(coloring),
                            source: w.source,
                            fingerprint: fp,
                            queue_ms: queue_wait_ms,
                            exec_ms,
                            total_ms,
                        }),
                        (None, Err(e)) => Err(ServeError::Coloring(e.clone())),
                        (None, Ok(_)) => unreachable!("shared is Some on Ok"),
                    }
                };
                (w, r)
            })
            .collect::<Vec<_>>()
    };
    for (w, r) in waiters {
        w.cell.resolve(r);
    }
    true
}

/// Aggregated service-level metrics snapshot.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Submissions seen (accepted + rejected).
    pub submitted: u64,
    /// Accepted jobs (cold + cache hits + coalesced).
    pub accepted: u64,
    /// Rejections: bounded queue at capacity.
    pub rejected_queue_full: u64,
    /// Rejections: graph over the admission bounds.
    pub rejected_too_large: u64,
    /// Rejections: submitted during drain.
    pub rejected_shutdown: u64,
    /// Jobs served straight from the cache.
    pub cache_hits: u64,
    /// Jobs attached to an identical in-flight execution.
    pub coalesced: u64,
    /// `"scheme":"auto"` requests resolved by the planner.
    pub auto_planned: u64,
    /// Executions actually run by workers.
    pub executions: u64,
    /// Executions skipped because every waiter's deadline had passed.
    pub skipped_executions: u64,
    /// Executions whose scheme returned a coloring.
    pub completed_ok: u64,
    /// Executions whose scheme failed (typed `ColorError`).
    pub completed_err: u64,
    /// Jobs resolved with `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Results currently cached.
    pub cache_entries: usize,
    /// Lifetime cache evictions.
    pub cache_evictions: u64,
    /// Executions waiting in the queue at snapshot time.
    pub queued: usize,
    /// Mean queue wait across executions.
    pub avg_queue_wait_ms: f64,
    /// Mean execution wall time.
    pub avg_exec_ms: f64,
    /// Successful-job latency samples held (bounded reservoir).
    pub latency_samples: usize,
    /// Median submission-to-resolution latency of successful jobs.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} accepted ({} cold runs, {} cache hits, {} coalesced); {} auto-planned",
            self.submitted,
            self.accepted,
            self.executions,
            self.cache_hits,
            self.coalesced,
            self.auto_planned
        )?;
        writeln!(
            f,
            "rejected: {} queue-full, {} too-large, {} shutting-down; {} deadline-exceeded",
            self.rejected_queue_full,
            self.rejected_too_large,
            self.rejected_shutdown,
            self.deadline_exceeded
        )?;
        writeln!(
            f,
            "executions: {} ok, {} failed, {} skipped; cache: {} entries, {} evictions",
            self.completed_ok,
            self.completed_err,
            self.skipped_executions,
            self.cache_entries,
            self.cache_evictions
        )?;
        write!(
            f,
            "latency over {} jobs: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms; queue wait avg {:.2} ms, exec avg {:.2} ms",
            self.latency_samples,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.avg_queue_wait_ms,
            self.avg_exec_ms
        )
    }
}

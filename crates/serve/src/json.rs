//! A minimal, self-contained JSON codec for the wire protocol.
//!
//! The workspace's `serde_json` is reserved for *writing* experiment
//! reports; the service protocol needs to *parse* requests from external
//! load generators, and pulling a full parser dependency for a
//! line-delimited protocol with six message fields is not worth it in a
//! deliberately dependency-light tree. This is a strict, small (≈200
//! line) recursive-descent parser plus a writer, covering exactly the
//! JSON subset the protocol uses: objects, arrays, strings (with `\uXXXX`
//! escapes), finite numbers, booleans and null.
//!
//! Numbers are kept as `f64`, which is exact for every integer the
//! protocol carries (ids, vertex counts, seeds up to 2^53; seeds larger
//! than that must be sent as strings — [`crate::proto`] accepts both).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`: a non-negative integral number, or a string
    /// of decimal digits (the escape hatch for 64-bit seeds above 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Builds a `Json::Obj` from key/value pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Infinity literal; `null` keeps the
                    // document parseable (percentiles of an empty window).
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(v) => {
                f.write_str("[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0; 4]))?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input line.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v << 4 | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi \\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        // JSON has no NaN/Infinity literal; a stats snapshot taken before
        // any job completes carries NaN percentiles and must still
        // serialize to a parseable document.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let line =
                Json::Obj(BTreeMap::from([("p50_ms".to_string(), Json::Num(x))])).to_string();
            assert_eq!(line, "{\"p50_ms\":null}");
            assert!(parse(&line).is_ok());
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("A\n")
        );
        // Astral-plane surrogate pair.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn u64_via_number_and_string() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(
            parse("\"18446744073709551615\"").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01abc",
            "\"unterminated",
            "[1] trailing",
            "\u{1}",
            "1e999",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::Num(1e15).to_string(), "1000000000000000");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }
}

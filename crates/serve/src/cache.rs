//! Fingerprint-keyed LRU result cache.
//!
//! Keys are [`Fingerprint`]s (the 128-bit job fingerprint of
//! `gcol_core::job`), values are shared [`Coloring`]s. Capacity is a
//! *entry* count, not bytes: a `Coloring` is `4n` bytes of colors plus a
//! small profile, and the service bounds `n` via admission control, so
//! an entry cap is an effective (and much simpler) memory bound.
//!
//! The implementation is a `HashMap` with per-entry monotonic use
//! stamps; eviction scans for the minimum stamp. That makes `get`/
//! `insert` O(1) and eviction O(capacity) — deliberate: capacities are
//! service-configured small numbers (hundreds), and an O(1) linked-list
//! LRU is not worth its intrusive bookkeeping at that size.

use gcol_core::{Coloring, Fingerprint};
use std::collections::HashMap;
use std::sync::Arc;

/// An LRU map from job fingerprints to finished colorings.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u128, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<Coloring>,
    last_used: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results. Zero disables caching
    /// (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `fp`, refreshing its recency on a hit.
    pub fn get(&mut self, fp: Fingerprint) -> Option<Arc<Coloring>> {
        self.tick += 1;
        match self.map.get_mut(&fp.0) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, fp: Fingerprint, value: Arc<Coloring>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&fp.0) {
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(
            fp.0,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime counters: `(hits, misses, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_core::{RunProfile, Scheme};

    fn coloring(tag: u32) -> Arc<Coloring> {
        Arc::new(Coloring {
            scheme: Scheme::Sequential,
            colors: vec![tag],
            num_colors: 1,
            iterations: 1,
            profile: RunProfile::new(),
        })
    }

    fn fp(k: u128) -> Fingerprint {
        Fingerprint(k)
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(2);
        assert!(c.get(fp(1)).is_none());
        c.insert(fp(1), coloring(10));
        assert_eq!(c.get(fp(1)).unwrap().colors, vec![10]);
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(fp(1), coloring(1));
        c.insert(fp(2), coloring(2));
        c.get(fp(1)); // 2 is now the LRU entry
        c.insert(fp(3), coloring(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(fp(2)).is_none(), "LRU entry should have been evicted");
        assert!(c.get(fp(1)).is_some());
        assert!(c.get(fp(3)).is_some());
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let mut c = ResultCache::new(1);
        c.insert(fp(1), coloring(1));
        c.insert(fp(1), coloring(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(fp(1)).unwrap().colors, vec![9]);
        assert_eq!(c.counters().2, 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert(fp(1), coloring(1));
        assert!(c.is_empty());
        assert!(c.get(fp(1)).is_none());
    }
}

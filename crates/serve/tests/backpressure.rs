//! Backpressure, admission-control and drain edge cases: the invariants
//! the service docs promise, pinned deterministically.
//!
//! Most tests run the service in manual mode (`num_workers: 0`): nothing
//! executes until `drain()`/`shutdown()`, so queue occupancy is exact
//! and every rejection is reproducible — no sleeps, no racing against a
//! worker that might dequeue before the next submit lands.

use gcol_core::{JobSpec, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::Csr;
use gcol_serve::{JobRequest, Rejection, ResultSource, ServeError, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn small_graph(seed: u64) -> Arc<Csr> {
    Arc::new(gen::rmat(RmatParams::erdos_renyi(8, 8), seed))
}

fn native_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Scheme::TopoBase);
    spec.opts = spec
        .opts
        .with_backend(gcol_core::BackendKind::Native)
        .with_seed(seed);
    spec
}

fn manual(queue_capacity: usize) -> Service {
    Service::start(ServiceConfig {
        num_workers: 0,
        queue_capacity,
        ..ServiceConfig::default()
    })
}

#[test]
fn queue_full_rejection_is_typed_and_never_drops_an_accepted_job() {
    let svc = manual(3);
    let g = small_graph(1);
    // Three distinct jobs fill the bounded queue exactly.
    let handles: Vec<_> = (0..3)
        .map(|seed| {
            svc.submit(JobRequest::new(Arc::clone(&g), native_spec(seed)))
                .expect("within capacity")
        })
        .collect();
    // The fourth distinct job is rejected with the typed reason…
    match svc.submit(JobRequest::new(Arc::clone(&g), native_spec(99))) {
        Err(Rejection::QueueFull { capacity: 3 }) => {}
        other => panic!("expected QueueFull{{capacity:3}}, got {other:?}"),
    }
    // …but a duplicate of an accepted job still coalesces: duplicates
    // never consume a queue slot, full or not.
    let twin = svc
        .submit(JobRequest::new(Arc::clone(&g), native_spec(0)))
        .expect("duplicate coalesces past a full queue");
    // Rejection had no effect; every accepted handle resolves on drain.
    let stats = svc.shutdown();
    for h in &handles {
        let r = h.wait().expect("accepted job must resolve Ok");
        gcol_core::verify_coloring(&g, &r.coloring.colors).unwrap();
        assert_eq!(r.source, ResultSource::Cold);
    }
    assert_eq!(twin.wait().unwrap().source, ResultSource::Coalesced);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.executions, 3, "the coalesced twin must not re-run");
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.completed_ok, 3);
}

#[test]
fn graph_too_large_is_rejected_with_the_tripped_bound() {
    let svc = Service::start(ServiceConfig {
        num_workers: 0,
        max_vertices: Some(10),
        max_edges: Some(1_000_000),
        ..ServiceConfig::default()
    });
    let g = small_graph(2); // 256 vertices
    match svc.submit(JobRequest::new(Arc::clone(&g), native_spec(0))) {
        Err(Rejection::GraphTooLarge {
            vertices,
            max_vertices: Some(10),
            max_edges: None, // the edge bound did not trip
            ..
        }) => assert_eq!(vertices, 256),
        other => panic!("expected GraphTooLarge, got {other:?}"),
    }
    let stats = svc.shutdown();
    assert_eq!(stats.rejected_too_large, 1);
    assert_eq!(stats.accepted, 0);
}

#[test]
fn shutdown_drains_queued_and_inflight_jobs() {
    // Real workers this time: submit a burst, shut down immediately —
    // drain semantics say every accepted job still resolves with a
    // proper coloring, whether it was running or still queued.
    let svc = Service::start(ServiceConfig {
        num_workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let g = small_graph(3);
    let handles: Vec<_> = (0..16)
        .map(|seed| {
            svc.submit(JobRequest::new(Arc::clone(&g), native_spec(seed)))
                .expect("accepted")
        })
        .collect();
    let stats = svc.shutdown();
    for h in &handles {
        let r = h.wait().expect("drained job resolves Ok");
        gcol_core::verify_coloring(&g, &r.coloring.colors).unwrap();
    }
    assert_eq!(stats.accepted, 16);
    assert_eq!(stats.completed_ok, 16);
    assert_eq!(stats.queued, 0, "shutdown left jobs behind");
}

#[test]
fn submissions_during_drain_are_rejected_shutting_down() {
    let svc = Service::start(ServiceConfig {
        num_workers: 1,
        queue_capacity: 1024,
        ..ServiceConfig::default()
    });
    let g = small_graph(4);
    let accepted: Vec<_> = (0..8)
        .map(|seed| {
            svc.submit(JobRequest::new(Arc::clone(&g), native_spec(seed)))
                .expect("accepted before drain")
        })
        .collect();
    svc.begin_drain();
    match svc.submit(JobRequest::new(Arc::clone(&g), native_spec(999))) {
        Err(Rejection::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    let stats = svc.shutdown();
    for h in accepted {
        h.wait().expect("every job accepted before drain resolves");
    }
    assert_eq!(stats.rejected_shutdown, 1);
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.completed_ok, 8);
}

#[test]
fn expired_deadline_resolves_typed_and_skips_execution() {
    let svc = manual(8);
    let g = small_graph(5);
    let mut req = JobRequest::new(Arc::clone(&g), native_spec(0));
    req.deadline = Some(Duration::from_millis(1));
    let late = svc.submit(req).expect("accepted");
    // A deadline-free twin of a *different* fingerprint still runs.
    let fine = svc
        .submit(JobRequest::new(Arc::clone(&g), native_spec(1)))
        .expect("accepted");
    std::thread::sleep(Duration::from_millis(20));
    let stats = svc.shutdown();
    assert!(matches!(late.wait(), Err(ServeError::DeadlineExceeded)));
    fine.wait().expect("no-deadline job unaffected");
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(
        stats.skipped_executions, 1,
        "an all-expired execution must not run"
    );
    assert_eq!(stats.executions, 1);
}

#[test]
fn duplicate_submissions_coalesce_and_repeats_hit_the_cache() {
    let svc = manual(8);
    let g = small_graph(6);
    let a = svc
        .submit(JobRequest::new(Arc::clone(&g), native_spec(7)))
        .unwrap();
    let b = svc
        .submit(JobRequest::new(Arc::clone(&g), native_spec(7)))
        .unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    svc.drain();
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();
    assert_eq!(ra.source, ResultSource::Cold);
    assert_eq!(rb.source, ResultSource::Coalesced);
    assert!(
        Arc::ptr_eq(&ra.coloring, &rb.coloring),
        "coalesced jobs share one result object"
    );
    // Identical resubmission after completion: served from cache,
    // resolved before any drain, sharing the cached object.
    let c = svc
        .submit(JobRequest::new(Arc::clone(&g), native_spec(7)))
        .unwrap();
    let rc = c
        .try_wait()
        .expect("cache hits resolve at submission")
        .unwrap();
    assert_eq!(rc.source, ResultSource::CacheHit);
    assert!(Arc::ptr_eq(&ra.coloring, &rc.coloring));
    let stats = svc.shutdown();
    assert_eq!(stats.executions, 1);
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.cache_hits, 1);
}

/// Debug builds record the lock-acquisition graph of the named mutex
/// classes (`serve-state`, `job-cell`, `conn-writer`); after driving the
/// worker pool, coalescing and cache concurrently, the graph must stay
/// acyclic — a cycle means two schedules acquire classes in opposite
/// orders, the precondition for an AB/BA deadlock the loom suite would
/// then have to find.
#[test]
fn concurrent_load_keeps_the_lock_order_acyclic() {
    let svc = Arc::new(Service::start(ServiceConfig {
        num_workers: 3,
        queue_capacity: 32,
        ..ServiceConfig::default()
    }));
    let g = small_graph(11);
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                for i in 0..8 {
                    // A mix of duplicates (coalesce/cache) and distinct jobs.
                    if let Ok(h) = svc.submit(JobRequest::new(Arc::clone(&g), native_spec(i % 3))) {
                        let _ = h.wait();
                    }
                    let _ = t;
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }
    let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("handles leaked"));
    svc.shutdown();
    gcol_serve::sync::lock_order::assert_acyclic();
}

//! Model-checked interleavings of the serve layer's concurrency core.
//!
//! These tests only exist under `RUSTFLAGS="--cfg loom"`; then
//! `cargo test -p gcol-serve --test loom` runs every thread schedule
//! (bounded by `LOOM_MAX_PREEMPTIONS`, default 2) of each body instead
//! of the one schedule a normal run happens to take. An invariant that
//! holds here holds on *every* bounded interleaving of facade sync
//! operations — queue admission, coalesce attach, cache fill, drain.
//!
//! The last two tests seed historical-style bugs (a drain that drops a
//! queued job; a check-then-act double resolve) in miniature replicas
//! and assert the model checker *fails* them: the layer's regression
//! proof that these schedules stay explored.
#![cfg(loom)]

use gcol_core::{JobSpec, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::Csr;
use gcol_serve::sync::{thread, Condvar, Mutex};
use gcol_serve::{JobRequest, Rejection, ResultSource, Service, ServiceConfig};
use std::collections::VecDeque;
use std::sync::Arc;

fn tiny_graph() -> Arc<Csr> {
    // 4 vertices: big enough to color, small enough that the scheme run
    // inside every explored execution costs microseconds.
    Arc::new(gen::rmat(RmatParams::erdos_renyi(4, 4), 7))
}

fn native_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Scheme::TopoBase);
    spec.opts = spec
        .opts
        .with_backend(gcol_core::BackendKind::Native)
        .with_seed(seed);
    spec
}

fn config(num_workers: usize, queue_capacity: usize) -> ServiceConfig {
    ServiceConfig {
        num_workers,
        queue_capacity,
        cache_capacity: 8,
        ..ServiceConfig::default()
    }
}

/// Queue-full vs coalesce: job X holds the single queue slot while a
/// duplicate of X and a distinct job Y race the admission lock and a
/// worker races them both. On every schedule the duplicate is accepted
/// without consuming a slot — coalesced onto the in-flight execution,
/// or a cache hit if the worker already finished X — while Y is either
/// accepted (the worker freed the slot in time) or typed `QueueFull`.
/// No third outcome, no lost handle.
#[test]
fn queue_full_vs_coalesce_race() {
    let g = tiny_graph();
    loom::model(move || {
        let svc = Arc::new(Service::start(config(1, 1)));
        let hx = svc
            .submit(JobRequest::new(Arc::clone(&g), native_spec(0)))
            .expect("empty queue accepts");
        let (s1, g1) = (Arc::clone(&svc), Arc::clone(&g));
        let t_dup = thread::spawn(move || s1.submit(JobRequest::new(g1, native_spec(0))));
        let (s2, g2) = (Arc::clone(&svc), Arc::clone(&g));
        let t_y = thread::spawn(move || s2.submit(JobRequest::new(g2, native_spec(1))));
        let r_dup = t_dup.join().unwrap();
        let r_y = t_y.join().unwrap();

        let h_dup = r_dup.expect("a duplicate never consumes a slot, full queue or not");
        let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("service still shared"));
        let stats = svc.shutdown();
        let x = hx.wait().expect("accepted job resolves ok");
        let dup = h_dup.wait().expect("accepted job resolves ok");
        assert_eq!(x.source, ResultSource::Cold);
        assert_eq!(
            x.coloring.colors, dup.coloring.colors,
            "duplicate shares X's result"
        );
        assert!(
            matches!(dup.source, ResultSource::Coalesced | ResultSource::CacheHit),
            "duplicate attached or hit the cache, got {:?}",
            dup.source
        );
        match r_y {
            // The worker freed the slot before Y's admission.
            Ok(h) => {
                h.wait().expect("accepted job resolves ok");
                assert_eq!(stats.executions, 2);
            }
            Err(Rejection::QueueFull { capacity: 1 }) => {
                assert_eq!(stats.executions, 1);
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    });
}

/// Drain vs in-flight delivery: a job accepted before `begin_drain`
/// resolves on every schedule, whether the drain lands before the
/// worker dequeues, mid-execution, or after delivery. `shutdown` always
/// terminates (a hang on any schedule is a model deadlock).
#[test]
fn drain_never_drops_in_flight_delivery() {
    let g = tiny_graph();
    loom::model(move || {
        let svc = Service::start(config(1, 4));
        let h = svc
            .submit(JobRequest::new(Arc::clone(&g), native_spec(0)))
            .expect("accepted before drain");
        let ctl = svc.controller();
        let drainer = thread::spawn(move || ctl.begin_drain());
        let r = h.wait().expect("accepted job survives a racing drain");
        assert_eq!(r.source, ResultSource::Cold);
        drainer.join().unwrap();
        let stats = svc.shutdown();
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.completed_ok, 1);
    });
}

/// Concurrent cache fill: two identical jobs racing two workers either
/// coalesce onto one execution or (if the first finishes before the
/// second submits) the second hits the cache — but on every schedule
/// both resolve with the bit-identical coloring and the accounting
/// (cold + coalesced + cache hits) covers both.
#[test]
fn concurrent_cache_fill_is_coherent() {
    let g = tiny_graph();
    loom::model(move || {
        let svc = Arc::new(Service::start(config(2, 4)));
        let (s1, g1) = (Arc::clone(&svc), Arc::clone(&g));
        let t = thread::spawn(move || {
            s1.submit(JobRequest::new(g1, native_spec(0)))
                .expect("capacity 4 never fills")
                .wait()
                .expect("resolves ok")
        });
        let mine = svc
            .submit(JobRequest::new(Arc::clone(&g), native_spec(0)))
            .expect("capacity 4 never fills")
            .wait()
            .expect("resolves ok");
        let theirs = t.join().unwrap();
        assert_eq!(
            mine.coloring.colors, theirs.coloring.colors,
            "cache/coalesce/cold must all deliver the identical coloring"
        );
        let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("handle leaked"));
        let stats = svc.shutdown();
        assert_eq!(stats.accepted, 2);
        assert_eq!(
            stats.executions + stats.coalesced + stats.cache_hits,
            2,
            "every accepted job is cold, coalesced or a cache hit"
        );
        assert!(stats.executions >= 1, "someone ran it");
    });
}

/// begin_drain vs submit state machine: a submission racing the drain
/// flag is either fully accepted (and then must resolve through
/// shutdown) or rejected `ShuttingDown` — never silently lost, on any
/// schedule.
#[test]
fn drain_vs_submit_is_accept_or_typed_reject() {
    let g = tiny_graph();
    loom::model(move || {
        let svc = Service::start(config(0, 4));
        let ctl = svc.controller();
        let drainer = thread::spawn(move || ctl.begin_drain());
        let r = svc.submit(JobRequest::new(Arc::clone(&g), native_spec(0)));
        drainer.join().unwrap();
        let stats = svc.shutdown();
        match r {
            Ok(h) => {
                h.wait().expect("accepted-during-race job resolves");
                assert_eq!(stats.executions, 1);
                assert_eq!(stats.rejected_shutdown, 0);
            }
            Err(Rejection::ShuttingDown) => {
                assert_eq!(stats.executions, 0);
                assert_eq!(stats.rejected_shutdown, 1);
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    });
}

/// Seeded historical-style bug #1 — the drain drop. A worker loop that
/// checks `draining` *before* checking the queue (instead of draining
/// the queue first, as `worker_loop` does) abandons a queued job on the
/// schedule where the drain flag lands between enqueue and dequeue; the
/// waiter then blocks forever and the model checker reports the
/// deadlock. This test asserts the checker catches it.
#[test]
fn seeded_drain_drop_is_caught() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            struct Q {
                state: Mutex<(VecDeque<u32>, bool)>, // (queue, draining)
                work: Condvar,
                done: Mutex<Option<u32>>,
                done_cv: Condvar,
            }
            let q = Arc::new(Q {
                state: Mutex::new((VecDeque::new(), false)),
                work: Condvar::new(),
                done: Mutex::new(None),
                done_cv: Condvar::new(),
            });
            let qw = Arc::clone(&q);
            let worker = thread::spawn(move || loop {
                let mut st = qw.state.lock().unwrap();
                // BUG: drain exits even with work still queued. The
                // correct loop drains the queue first and only exits
                // when `empty && draining`.
                if st.1 {
                    return;
                }
                if let Some(job) = st.0.pop_front() {
                    drop(st);
                    *qw.done.lock().unwrap() = Some(job);
                    qw.done_cv.notify_all();
                    continue;
                }
                let _ = qw.work.wait(st);
            });
            {
                let mut st = q.state.lock().unwrap();
                st.0.push_back(42);
            }
            q.work.notify_one();
            {
                let mut st = q.state.lock().unwrap();
                st.1 = true; // begin drain
            }
            q.work.notify_all();
            // The accepted job's waiter: hangs forever on the schedule
            // where the worker saw `draining` before dequeueing.
            let mut done = q.done.lock().unwrap();
            while done.is_none() {
                done = q.done_cv.wait(done).unwrap();
            }
            drop(done);
            worker.join().unwrap();
        });
    });
    let msg = payload_string(caught.expect_err("model must catch the drain drop"));
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock report, got: {msg}"
    );
}

/// Seeded historical-style bug #2 — the double resolve. Two resolvers
/// that *check* a job cell outside the critical section that *sets* it
/// can both observe "unresolved" and both resolve; the model checker
/// finds the schedule where the second overwrites the first. This test
/// asserts the checker catches it.
#[test]
fn seeded_double_resolve_is_caught() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let cell = Arc::new(Mutex::new(None::<u32>));
            let resolutions = Arc::new(Mutex::new(0u32));
            let spawn_resolver = |val: u32| {
                let cell = Arc::clone(&cell);
                let resolutions = Arc::clone(&resolutions);
                thread::spawn(move || {
                    // BUG: check-then-act across two critical sections.
                    // JobCell::resolve holds one lock across both (and
                    // debug-asserts the cell is still empty).
                    let unresolved = cell.lock().unwrap().is_none();
                    if unresolved {
                        *cell.lock().unwrap() = Some(val);
                        *resolutions.lock().unwrap() += 1;
                    }
                })
            };
            let t1 = spawn_resolver(1);
            let t2 = spawn_resolver(2);
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(*resolutions.lock().unwrap(), 1, "job resolved twice");
        });
    });
    let msg = payload_string(caught.expect_err("model must catch the double resolve"));
    assert!(
        msg.contains("job resolved twice"),
        "expected the double-resolve assertion, got: {msg}"
    );
}

fn payload_string(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

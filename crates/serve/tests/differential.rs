//! Serving must never change results: for every GPU scheme and every
//! backend, a coloring served through the queue/cache/coalescing
//! machinery is bit-identical to calling `Scheme::try_color` directly
//! with the same graph and options — including when the answer comes
//! from the result cache or a coalesced twin.

use gcol_core::{BackendKind, ColorOptions, JobSpec, Scheme};
use gcol_graph::gen::{self, RmatParams};
use gcol_graph::Csr;
use gcol_serve::{JobRequest, ResultSource, Service, ServiceConfig};
use gcol_simt::{Device, ExecMode};
use std::sync::Arc;

fn graphs() -> Vec<(&'static str, Arc<Csr>)> {
    vec![
        (
            "rmat-s8",
            Arc::new(gen::rmat(RmatParams::erdos_renyi(8, 8), 0xD1FF)),
        ),
        ("cycle-65", Arc::new(gen::cycle(65))),
    ]
}

fn spec_with(scheme: Scheme, opts: ColorOptions) -> JobSpec {
    let mut spec = JobSpec::new(scheme);
    spec.opts = opts;
    spec
}

/// Served (cold, then cache hit) vs direct, asserting bit-identical
/// color vectors — and, when the backend is deterministic end to end
/// (`check_profile`), identical modeled profiles too. The native
/// backend's profile records measured wall time, so only its colors
/// are comparable across runs.
fn assert_served_matches_direct(opts_for: &dyn Fn(Scheme) -> ColorOptions, check_profile: bool) {
    let device = Device::k20c();
    let svc = Service::start(ServiceConfig {
        num_workers: 2,
        ..ServiceConfig::default()
    });
    for (gname, g) in graphs() {
        for scheme in Scheme::GPU {
            let opts = opts_for(scheme);
            let direct = scheme
                .try_color(&g, &device, &opts)
                .unwrap_or_else(|e| panic!("{} direct on {gname}: {e}", scheme.name()));
            let submit = || {
                svc.submit(JobRequest::new(
                    Arc::clone(&g),
                    spec_with(scheme, opts.clone()),
                ))
                .expect("accepted")
            };
            let cold = submit()
                .wait()
                .unwrap_or_else(|e| panic!("{} served on {gname}: {e}", scheme.name()));
            assert_eq!(
                cold.coloring.colors,
                direct.colors,
                "{} on {gname}: served coloring differs from direct",
                scheme.name()
            );
            assert_eq!(cold.coloring.num_colors, direct.num_colors);
            assert_eq!(cold.coloring.iterations, direct.iterations);
            if check_profile {
                assert_eq!(
                    cold.coloring.profile,
                    direct.profile,
                    "{} on {gname}: modeled profile differs",
                    scheme.name()
                );
            }
            // The repeat must come from the cache and stay identical.
            let warm = submit().wait().unwrap();
            assert_eq!(warm.source, ResultSource::CacheHit, "{}", scheme.name());
            assert_eq!(warm.coloring.colors, direct.colors);
            if check_profile {
                assert_eq!(warm.coloring.profile, direct.profile);
            }
        }
    }
    let stats = svc.shutdown();
    assert_eq!(stats.completed_err, 0);
    assert_eq!(stats.cache_hits, stats.executions, "one hit per cold run");
}

#[test]
fn served_equals_direct_simt_deterministic() {
    assert_served_matches_direct(
        &|_| {
            ColorOptions::default()
                .with_backend(BackendKind::Simt)
                .with_exec_mode(ExecMode::Deterministic)
        },
        true,
    );
}

#[test]
fn served_equals_direct_native_backend() {
    assert_served_matches_direct(
        &|_| ColorOptions::default().with_backend(BackendKind::Native),
        false,
    );
}

#[test]
fn served_equals_direct_sharded_backend() {
    assert_served_matches_direct(
        &|_| {
            ColorOptions::default()
                .with_backend(BackendKind::Simt)
                .with_exec_mode(ExecMode::Deterministic)
                .with_shards(2)
        },
        true,
    );
}

#[test]
fn coalesced_twin_is_bit_identical_to_direct() {
    // Manual mode pins the interleaving: both submissions sit queued as
    // one execution, so the second is guaranteed Coalesced, not CacheHit.
    let device = Device::k20c();
    let svc = Service::start(ServiceConfig {
        num_workers: 0,
        ..ServiceConfig::default()
    });
    let g = Arc::new(gen::rmat(RmatParams::erdos_renyi(8, 8), 7));
    let opts = ColorOptions::default()
        .with_backend(BackendKind::Simt)
        .with_exec_mode(ExecMode::Deterministic);
    let direct = Scheme::DataBase.try_color(&g, &device, &opts).unwrap();
    let spec = spec_with(Scheme::DataBase, opts);
    let a = svc
        .submit(JobRequest::new(Arc::clone(&g), spec.clone()))
        .unwrap();
    let b = svc.submit(JobRequest::new(Arc::clone(&g), spec)).unwrap();
    svc.drain();
    let (ra, rb) = (a.wait().unwrap(), b.wait().unwrap());
    assert_eq!(ra.source, ResultSource::Cold);
    assert_eq!(rb.source, ResultSource::Coalesced);
    assert_eq!(ra.coloring.colors, direct.colors);
    assert_eq!(rb.coloring.colors, direct.colors);
    assert_eq!(rb.coloring.profile, direct.profile);
    assert_eq!(svc.shutdown().executions, 1);
}

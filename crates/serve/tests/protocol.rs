//! End-to-end line protocol test: feed a scripted session through
//! `serve_lines` and check every response line, correlating by id
//! (responses to accepted jobs may arrive in any order).

use gcol_graph::gen::{self, RmatParams};
use gcol_serve::json::{self, Json};
use gcol_serve::{serve_lines, Service, ServiceConfig};
use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` the test can read back after `serve_lines` consumes it.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_session(input: &str) -> (Vec<Json>, gcol_serve::ServiceStats) {
    run_session_with(
        ServiceConfig {
            num_workers: 2,
            ..ServiceConfig::default()
        },
        input,
    )
}

fn run_session_with(config: ServiceConfig, input: &str) -> (Vec<Json>, gcol_serve::ServiceStats) {
    let svc = Service::start(config);
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let resolve = |name: &str, scale: u32, seed: u64| match name {
        "rmat" => Ok(Arc::new(gen::rmat(RmatParams::erdos_renyi(scale, 8), seed))),
        other => Err(format!("unknown graph generator '{other}'")),
    };
    let stats = serve_lines(svc, input.as_bytes(), buf.clone(), &resolve).unwrap();
    let bytes = buf.0.lock().unwrap().clone();
    let lines = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).expect("every response line is valid JSON"))
        .collect();
    (lines, stats)
}

fn by_id(lines: &[Json]) -> HashMap<u64, &Json> {
    lines
        .iter()
        .filter_map(|l| l.get("id").and_then(Json::as_u64).map(|id| (id, l)))
        .collect()
}

#[test]
fn scripted_session_colors_inline_and_named_graphs() {
    let input = concat!(
        // Inline CSR: the Fig. 2 pentagon-ish graph.
        r#"{"id":1,"op":"color","graph":{"r":[0,2,6,9,11,14],"c":[1,2,0,2,3,4,0,1,4,1,4,1,2,3]},"scheme":"T-base","backend":"native","assignment":true}"#,
        "\n",
        // Named generator, default scheme.
        r#"{"id":2,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"backend":"native"}"#,
        "\n",
        // Identical repeat: must be a cache hit or coalesced, same colors.
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"backend":"native"}"#,
        "\n",
        r#"{"id":4,"op":"stats"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    let resp = by_id(&lines);

    let r1 = resp[&1];
    assert_eq!(r1.get("ok").and_then(Json::as_bool), Some(true));
    assert!(r1.get("colors").and_then(Json::as_u64).unwrap() >= 3);
    let assignment = r1
        .get("assignment")
        .and_then(Json::as_arr)
        .expect("assignment requested");
    assert_eq!(assignment.len(), 5);
    assert_eq!(r1.get("source").and_then(Json::as_str), Some("cold"));

    let r2 = resp[&2];
    let r3 = resp[&3];
    assert_eq!(r2.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(r3.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        r2.get("colors").and_then(Json::as_u64),
        r3.get("colors").and_then(Json::as_u64)
    );
    assert_eq!(
        r2.get("fingerprint").and_then(Json::as_str),
        r3.get("fingerprint").and_then(Json::as_str),
        "identical requests share a fingerprint"
    );
    let src3 = r3.get("source").and_then(Json::as_str).unwrap();
    assert!(
        src3 == "cache-hit" || src3 == "coalesced",
        "repeat must reuse work, got {src3}"
    );

    // The stats line is a snapshot taken mid-session: only fields that
    // are stable at that point are asserted.
    let r4 = resp[&4];
    assert_eq!(r4.get("ok").and_then(Json::as_bool), Some(true));
    assert!(r4.get("accepted").and_then(Json::as_u64).unwrap() >= 1);

    // Final drained stats: 3 accepted color jobs, 2 executions (the
    // repeat reused one), nothing rejected.
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.executions, 2);
    assert_eq!(stats.cache_hits + stats.coalesced, 1);
    assert_eq!(stats.rejected_queue_full + stats.rejected_too_large, 0);
}

#[test]
fn exchange_kind_is_part_of_the_cache_fingerprint() {
    // Same sharded job under the two ghost wire formats: identical
    // colors, but distinct fingerprints — a dense run must never be
    // served from the cache for a delta request (their modeled exchange
    // timelines differ).
    let input = concat!(
        r#"{"id":1,"op":"color","graph":{"gen":"rmat","scale":7,"seed":2},"scheme":"T-base","shards":2,"exchange":"delta"}"#,
        "\n",
        r#"{"id":2,"op":"color","graph":{"gen":"rmat","scale":7,"seed":2},"scheme":"T-base","shards":2,"exchange":"dense"}"#,
        "\n",
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":7,"seed":2},"scheme":"T-base","shards":2}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    let resp = by_id(&lines);
    for id in 1..=3 {
        assert_eq!(resp[&id].get("ok").and_then(Json::as_bool), Some(true));
    }
    let fp = |id: u64| resp[&id].get("fingerprint").and_then(Json::as_str).unwrap();
    assert_ne!(fp(1), fp(2), "exchange kind must separate fingerprints");
    assert_eq!(fp(1), fp(3), "delta is the default exchange kind");
    assert_eq!(
        resp[&1].get("colors").and_then(Json::as_u64),
        resp[&2].get("colors").and_then(Json::as_u64),
        "wire format must not change the coloring"
    );
    // Jobs 1 and 3 share a fingerprint; job 2 is its own execution.
    assert_eq!(stats.executions, 2);
    assert_eq!(stats.cache_hits + stats.coalesced, 1);
}

#[test]
fn mutate_and_recolor_drive_an_incremental_session() {
    let input = concat!(
        // Establish the session graph (no edits yet).
        r#"{"id":1,"op":"mutate","graph":{"r":[0,2,6,9,11,14],"c":[1,2,0,2,3,4,0,1,4,1,4,1,2,3]}}"#,
        "\n",
        // First recolor: nothing to repair against, runs from scratch.
        r#"{"id":2,"op":"recolor","scheme":"T-base","backend":"native","assignment":true}"#,
        "\n",
        // Clean repeat: the held baseline is served as-is.
        r#"{"id":3,"op":"recolor","scheme":"T-base","backend":"native"}"#,
        "\n",
        // Close the 5-cycle chord: touches vertices 0 and 3.
        r#"{"id":4,"op":"mutate","edits":[["+",0,3]]}"#,
        "\n",
        // Same options: repaired through the dirty set.
        r#"{"id":5,"op":"recolor","scheme":"T-base","backend":"native","assignment":true}"#,
        "\n",
        // Different scheme: the baseline does not transfer.
        r#"{"id":6,"op":"recolor","scheme":"D-base","backend":"native"}"#,
        "\n",
        // A deleted absent edge plus a cancelling pair touch nothing.
        r#"{"id":7,"op":"mutate","edits":[["-",0,4],["+",2,3],["-",2,3]]}"#,
        "\n",
    );
    let (lines, _) = run_session(input);
    let resp = by_id(&lines);
    for id in 1..=7 {
        assert_eq!(
            resp[&id].get("ok").and_then(Json::as_bool),
            Some(true),
            "response {id} failed: {:?}",
            resp[&id]
        );
    }
    assert_eq!(resp[&1].get("touched").and_then(Json::as_u64), Some(0));
    assert_eq!(resp[&1].get("vertices").and_then(Json::as_u64), Some(5));
    assert_eq!(
        resp[&2].get("source").and_then(Json::as_str),
        Some("scratch")
    );
    assert_eq!(
        resp[&3].get("source").and_then(Json::as_str),
        Some("session")
    );
    assert_eq!(
        resp[&3].get("colors").and_then(Json::as_u64),
        resp[&2].get("colors").and_then(Json::as_u64)
    );
    // The mutate rolled the graph's content fingerprint: cache keys for
    // the old graph can never serve the new one.
    assert_eq!(resp[&4].get("touched").and_then(Json::as_u64), Some(2));
    assert_ne!(
        resp[&1].get("graph_fingerprint").and_then(Json::as_str),
        resp[&4].get("graph_fingerprint").and_then(Json::as_str)
    );
    assert_eq!(resp[&4].get("edges").and_then(Json::as_u64), Some(16));
    // The delta repair consumed the two touched vertices and produced a
    // proper coloring of the edited graph (0 and 3 now adjacent).
    assert_eq!(resp[&5].get("source").and_then(Json::as_str), Some("delta"));
    assert_eq!(resp[&5].get("repaired").and_then(Json::as_u64), Some(2));
    let colors = |r: &Json| -> Vec<u64> {
        r.get("assignment")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect()
    };
    let (before, after) = (colors(resp[&2]), colors(resp[&5]));
    assert_ne!(after[0], after[3], "chord endpoints must now differ");
    for v in [1usize, 2, 4] {
        assert_eq!(before[v], after[v], "untouched vertex {v} recolored");
    }
    assert_eq!(
        resp[&6].get("source").and_then(Json::as_str),
        Some("scratch")
    );
    assert_eq!(resp[&7].get("touched").and_then(Json::as_u64), Some(0));
}

#[test]
fn session_verbs_fail_cleanly_without_a_session_graph() {
    let input = concat!(
        r#"{"id":1,"op":"recolor","scheme":"T-base"}"#,
        "\n",
        r#"{"id":2,"op":"mutate","edits":[["+",0,1]]}"#,
        "\n",
        // Out-of-range endpoint: typed bad-edit, session survives.
        r#"{"id":3,"op":"mutate","graph":{"r":[0,1,2],"c":[1,0]},"edits":[["+",0,9]]}"#,
        "\n",
        r#"{"id":4,"op":"recolor","scheme":"T-base","backend":"native"}"#,
        "\n",
    );
    let (lines, _) = run_session(input);
    let resp = by_id(&lines);
    assert_eq!(
        resp[&1].get("error").and_then(Json::as_str),
        Some("no-graph")
    );
    assert_eq!(
        resp[&2].get("error").and_then(Json::as_str),
        Some("no-graph")
    );
    assert_eq!(
        resp[&3].get("error").and_then(Json::as_str),
        Some("bad-edit")
    );
    // The rejected batch left the freshly loaded graph intact.
    assert_eq!(resp[&4].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        resp[&4].get("source").and_then(Json::as_str),
        Some("scratch")
    );
}

#[test]
fn bad_lines_get_typed_errors_and_do_not_kill_the_session() {
    let input = concat!(
        "this is not json\n",
        r#"{"id":7,"op":"color","graph":{"gen":"nope","scale":4,"seed":1}}"#,
        "\n",
        r#"{"id":8,"op":"color","graph":{"gen":"rmat","scale":4,"seed":1},"backend":"native"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    assert!(
        lines
            .iter()
            .any(|l| l.get("error").and_then(Json::as_str) == Some("bad-request")),
        "malformed line must produce a bad-request error"
    );
    let resp = by_id(&lines);
    assert_eq!(
        resp[&7].get("error").and_then(Json::as_str),
        Some("unknown-graph")
    );
    assert_eq!(resp[&8].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.accepted, 1);
}

// The paper's Fig. 2 graph (5 vertices, 7 undirected edges) as DIMACS
// text, `\n`-escaped for embedding in a JSON `load` request. The same
// graph the inline-CSR tests above use, so shapes are comparable.
const FIG2_COL: &str = r"p edge 5 7\ne 1 2\ne 1 3\ne 2 3\ne 2 4\ne 2 5\ne 3 5\ne 4 5\n";

#[test]
fn load_colors_and_caches_by_content_fingerprint() {
    let input = format!(
        concat!(
            // Upload with a declared format.
            r#"{{"id":1,"op":"load","format":"dimacs","data":"{d}"}}"#,
            "\n",
            // Color the session graph: a cold run through the service.
            r#"{{"id":2,"op":"color","graph":"session","scheme":"T-base","backend":"native"}}"#,
            "\n",
            // Re-upload the identical bytes, chunked this time and with
            // the format sniffed from the `p` line.
            r#"{{"id":3,"op":"load","data":"{c1}","last":false}}"#,
            "\n",
            r#"{{"id":4,"op":"load","data":"{c2}"}}"#,
            "\n",
            // Same graph bytes + same spec: must reuse the cached run.
            r#"{{"id":5,"op":"color","graph":"session","scheme":"T-base","backend":"native"}}"#,
            "\n",
        ),
        d = FIG2_COL,
        c1 = r"p edge 5 7\ne 1 2\ne 1 3\ne 2 3\n",
        c2 = r"e 2 4\ne 2 5\ne 3 5\ne 4 5\n",
    );
    let (lines, stats) = run_session_with(ServiceConfig::default(), &input);
    let resp = by_id(&lines);

    let r1 = resp[&1];
    assert_eq!(r1.get("ok").and_then(Json::as_bool), Some(true), "{r1:?}");
    assert_eq!(r1.get("status").and_then(Json::as_str), Some("loaded"));
    assert_eq!(r1.get("format").and_then(Json::as_str), Some("dimacs"));
    assert_eq!(r1.get("vertices").and_then(Json::as_u64), Some(5));
    assert_eq!(r1.get("edges").and_then(Json::as_u64), Some(14));

    assert_eq!(resp[&2].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp[&2].get("source").and_then(Json::as_str), Some("cold"));

    // The chunk ack reports buffered bytes, the final chunk the graph.
    assert_eq!(
        resp[&3].get("status").and_then(Json::as_str),
        Some("loading")
    );
    assert!(resp[&3].get("bytes").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        resp[&4].get("status").and_then(Json::as_str),
        Some("loaded")
    );
    assert_eq!(
        resp[&4].get("format").and_then(Json::as_str),
        Some("dimacs")
    );
    assert_eq!(
        resp[&4].get("graph_fingerprint").and_then(Json::as_str),
        r1.get("graph_fingerprint").and_then(Json::as_str),
        "identical bytes must produce the identical content fingerprint"
    );

    assert_eq!(resp[&5].get("ok").and_then(Json::as_bool), Some(true));
    let src5 = resp[&5].get("source").and_then(Json::as_str).unwrap();
    assert!(
        src5 == "cache-hit" || src5 == "coalesced",
        "re-loading the same bytes must reuse the cached/in-flight run, got {src5}"
    );
    assert_eq!(
        resp[&2].get("fingerprint").and_then(Json::as_str),
        resp[&5].get("fingerprint").and_then(Json::as_str)
    );
    assert_eq!(stats.executions, 1);
    assert_eq!(stats.cache_hits + stats.coalesced, 1);
}

#[test]
fn oversize_upload_is_cut_off_mid_stream() {
    let input = format!(
        concat!(
            // Two chunks; the second pushes the buffer past the cap
            // while the client still claims more is coming.
            r#"{{"id":1,"op":"load","format":"dimacs","data":"{c1}","last":false}}"#,
            "\n",
            r#"{{"id":2,"op":"load","data":"{c1}","last":false}}"#,
            "\n",
            // The buffer was dropped with the rejection: a fresh small
            // upload parses from a clean slate on the same connection.
            r#"{{"id":3,"op":"load","format":"dimacs","data":"{small}"}}"#,
            "\n",
            r#"{{"id":4,"op":"color","graph":"session","backend":"native"}}"#,
            "\n",
        ),
        c1 = r"p edge 5 7\ne 1 2\ne 1 3\n",
        small = r"p edge 2 1\ne 1 2\n",
    );
    let (lines, _) = run_session_with(
        ServiceConfig {
            max_upload_bytes: Some(32),
            ..ServiceConfig::default()
        },
        &input,
    );
    let resp = by_id(&lines);
    assert_eq!(
        resp[&1].get("status").and_then(Json::as_str),
        Some("loading")
    );
    assert_eq!(
        resp[&2].get("error").and_then(Json::as_str),
        Some("upload-too-large"),
        "{:?}",
        resp[&2]
    );
    assert_eq!(
        resp[&3].get("ok").and_then(Json::as_bool),
        Some(true),
        "{:?}",
        resp[&3]
    );
    assert_eq!(resp[&3].get("vertices").and_then(Json::as_u64), Some(2));
    assert_eq!(resp[&4].get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn bad_uploads_fail_typed_and_the_connection_recovers() {
    let input = format!(
        concat!(
            // Admission limits apply while parsing: the header already
            // promises more vertices than allowed.
            r#"{{"id":1,"op":"load","format":"dimacs","data":"{d}"}}"#,
            "\n",
            // Malformed text: an edge before any problem line.
            r#"{{"id":2,"op":"load","format":"dimacs","data":"e 1 2\n"}}"#,
            "\n",
            // Bare numbers are ambiguous without a format declaration.
            r#"{{"id":3,"op":"load","data":"1 2\n"}}"#,
            "\n",
            // After three failures the connection still loads and colors.
            r#"{{"id":4,"op":"load","format":"dimacs","data":"{small}"}}"#,
            "\n",
            r#"{{"id":5,"op":"color","graph":"session","backend":"native"}}"#,
            "\n",
        ),
        d = FIG2_COL,
        small = r"p edge 3 2\ne 1 2\ne 2 3\n",
    );
    let (lines, _) = run_session_with(
        ServiceConfig {
            max_vertices: Some(4),
            ..ServiceConfig::default()
        },
        &input,
    );
    let resp = by_id(&lines);
    assert_eq!(
        resp[&1].get("error").and_then(Json::as_str),
        Some("graph-too-large"),
        "{:?}",
        resp[&1]
    );
    assert_eq!(
        resp[&2].get("error").and_then(Json::as_str),
        Some("bad-graph")
    );
    assert!(
        resp[&2]
            .get("detail")
            .and_then(Json::as_str)
            .unwrap()
            .contains("line"),
        "parse errors carry the offending line: {:?}",
        resp[&2]
    );
    assert_eq!(
        resp[&3].get("error").and_then(Json::as_str),
        Some("bad-graph")
    );
    assert_eq!(
        resp[&4].get("ok").and_then(Json::as_bool),
        Some(true),
        "{:?}",
        resp[&4]
    );
    assert_eq!(resp[&5].get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn load_feeds_the_incremental_session() {
    let input = format!(
        concat!(
            r#"{{"id":1,"op":"load","format":"dimacs","data":"{d}"}}"#,
            "\n",
            // The loaded graph is the session graph: recolor runs on it.
            r#"{{"id":2,"op":"recolor","scheme":"T-base","backend":"native","assignment":true}}"#,
            "\n",
            // Close the 0–3 chord (0-based ids), then repair.
            r#"{{"id":3,"op":"mutate","edits":[["+",0,3]]}}"#,
            "\n",
            r#"{{"id":4,"op":"recolor","scheme":"T-base","backend":"native","assignment":true}}"#,
            "\n",
        ),
        d = FIG2_COL,
    );
    let (lines, _) = run_session_with(ServiceConfig::default(), &input);
    let resp = by_id(&lines);
    for id in 1..=4 {
        assert_eq!(
            resp[&id].get("ok").and_then(Json::as_bool),
            Some(true),
            "response {id} failed: {:?}",
            resp[&id]
        );
    }
    assert_eq!(
        resp[&2].get("source").and_then(Json::as_str),
        Some("scratch")
    );
    // The edit rolled the fingerprint the load reported.
    assert_ne!(
        resp[&3].get("graph_fingerprint").and_then(Json::as_str),
        resp[&1].get("graph_fingerprint").and_then(Json::as_str)
    );
    assert_eq!(resp[&3].get("touched").and_then(Json::as_u64), Some(2));
    assert_eq!(resp[&4].get("source").and_then(Json::as_str), Some("delta"));
    assert_eq!(resp[&4].get("repaired").and_then(Json::as_u64), Some(2));
    let colors = |r: &Json| -> Vec<u64> {
        r.get("assignment")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect()
    };
    let after = colors(resp[&4]);
    assert_ne!(after[0], after[3], "chord endpoints must differ");
}

#[test]
fn shutdown_request_acks_and_stops_reading() {
    let input = concat!(
        r#"{"id":1,"op":"color","graph":{"gen":"rmat","scale":4,"seed":9},"backend":"native"}"#,
        "\n",
        r#"{"id":2,"op":"shutdown"}"#,
        "\n",
        // Never read: the server stops at the shutdown request.
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":4,"seed":10},"backend":"native"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    let resp = by_id(&lines);
    assert_eq!(resp[&1].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        resp[&2].get("status").and_then(Json::as_str),
        Some("draining")
    );
    assert!(
        !resp.contains_key(&3),
        "lines after shutdown must not be served"
    );
    assert_eq!(stats.accepted, 1);
}

/// The protocol server adds the `conn-writer` class (responder threads
/// write under it while job cells resolve): after full pipelined
/// sessions, the recorded acquisition graph must still be acyclic.
#[test]
fn pipelined_sessions_keep_the_lock_order_acyclic() {
    let input = concat!(
        r#"{"id":1,"op":"color","graph":{"gen":"rmat","scale":5,"seed":3}}"#,
        "\n",
        r#"{"id":2,"op":"color","graph":{"gen":"rmat","scale":5,"seed":3}}"#,
        "\n",
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":5,"seed":4},"backend":"native"}"#,
        "\n",
        r#"{"id":4,"op":"stats"}"#,
        "\n",
    );
    let (lines, _) = run_session(input);
    assert_eq!(by_id(&lines).len(), 4);
    gcol_serve::sync::lock_order::assert_acyclic();
}

/// A `Read` that hands out one scripted line per call and fires
/// `begin_drain` at a chosen line boundary — the deterministic stand-in
/// for a drain signal landing mid-upload.
struct DrainBetween {
    lines: Vec<Vec<u8>>,
    next: usize,
    drain_before: usize,
    ctl: gcol_serve::DrainController,
}

impl std::io::Read for DrainBetween {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.next >= self.lines.len() {
            return Ok(0);
        }
        if self.next == self.drain_before {
            self.ctl.begin_drain();
        }
        let line = &self.lines[self.next];
        assert!(buf.len() >= line.len(), "test lines fit one read");
        buf[..line.len()].copy_from_slice(line);
        self.next += 1;
        Ok(line.len())
    }
}

/// Shutdown edge: a chunked `load` is mid-upload when `begin_drain`
/// fires. The connection must resolve cleanly — the remaining chunks get
/// the same typed `shutting-down` rejection a `submit` would, the
/// accumulated buffer is dropped (no graph is parsed, no session
/// installed), and `serve_lines` returns instead of hanging.
#[test]
fn upload_in_progress_when_drain_fires_resolves_typed() {
    let svc = Service::start(ServiceConfig {
        num_workers: 1,
        ..ServiceConfig::default()
    });
    let ctl = svc.controller();
    let script = [
        // Chunk 1 arrives before the drain…
        r#"{"id":1,"op":"load","format":"edges","data":"0 1\n1 2\n","last":false}"#,
        // …the drain fires here…
        r#"{"id":2,"op":"load","data":"2 3\n","last":true}"#,
        // …and a fresh request on the drained connection is also typed.
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":4,"seed":1},"backend":"native"}"#,
    ];
    let reader = std::io::BufReader::new(DrainBetween {
        lines: script
            .iter()
            .map(|l| format!("{l}\n").into_bytes())
            .collect(),
        next: 0,
        drain_before: 1,
        ctl,
    });
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let resolve = |name: &str, scale: u32, seed: u64| match name {
        "rmat" => Ok(Arc::new(gen::rmat(RmatParams::erdos_renyi(scale, 8), seed))),
        other => Err(format!("unknown graph generator '{other}'")),
    };
    let stats = serve_lines(svc, reader, buf.clone(), &resolve).unwrap();
    let bytes = buf.0.lock().unwrap().clone();
    let lines: Vec<Json> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).expect("valid JSON"))
        .collect();
    let resp = by_id(&lines);
    assert_eq!(
        resp[&1].get("status").and_then(Json::as_str),
        Some("loading"),
        "pre-drain chunk was accepted"
    );
    assert_eq!(
        resp[&2].get("error").and_then(Json::as_str),
        Some("shutting-down"),
        "mid-upload drain resolves the upload with the typed rejection"
    );
    assert_eq!(
        resp[&3].get("error").and_then(Json::as_str),
        Some("shutting-down"),
        "post-drain submissions are rejected the same way"
    );
    assert_eq!(stats.accepted, 0, "the dropped upload never became a job");
    gcol_serve::sync::lock_order::assert_acyclic();
}

/// `"scheme":"auto"` end to end: the response echoes the resolved plan
/// (shape pinned here — this is the wire contract), identical auto
/// requests key to one execution (cache hit or coalesced, never two
/// cold runs), the `stats` op reports `auto_planned`, and fixed-scheme
/// responses carry no `"plan"` key.
#[test]
fn auto_requests_echo_the_plan_and_share_one_execution() {
    let input = concat!(
        r#"{"id":1,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"scheme":"auto","slo":"fastest-wall"}"#,
        "\n",
        r#"{"id":2,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"scheme":"auto","slo":"fastest-wall"}"#,
        "\n",
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"scheme":"T-base"}"#,
        "\n",
        r#"{"id":4,"op":"stats"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    let resp = by_id(&lines);

    let r1 = resp[&1];
    assert_eq!(r1.get("ok").and_then(Json::as_bool), Some(true));
    let plan = r1.get("plan").expect("auto responses echo the plan");
    assert_eq!(plan.get("slo").and_then(Json::as_str), Some("fastest-wall"));
    let planned_scheme = plan
        .get("scheme")
        .and_then(Json::as_str)
        .expect("plan.scheme");
    assert_eq!(
        plan.get("backend").and_then(Json::as_str),
        Some("simt"),
        "the request's backend field is the auto envelope"
    );
    assert!(plan.get("shards").and_then(Json::as_u64).unwrap() >= 1);
    assert!(plan.get("exchange").and_then(Json::as_str).is_some());
    assert!(plan
        .get("predicted_ms")
        .and_then(Json::as_f64)
        .unwrap()
        .is_finite());
    assert!(plan
        .get("predicted_colors")
        .and_then(Json::as_f64)
        .unwrap()
        .is_finite());
    assert_eq!(
        r1.get("scheme").and_then(Json::as_str),
        Some(planned_scheme),
        "the job that ran is the one the plan named"
    );

    // The identical auto request resolves to the identical plan and the
    // identical job: same fingerprint, exactly one cold run between them.
    let r2 = resp[&2];
    assert_eq!(r2.get("plan"), r1.get("plan"));
    assert_eq!(r2.get("fingerprint"), r1.get("fingerprint"));
    let sources: Vec<&str> = [r1, r2]
        .iter()
        .map(|r| r.get("source").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        sources.iter().filter(|s| **s == "cold").count(),
        1,
        "identical auto requests must share one execution: {sources:?}"
    );

    // Fixed-scheme responses have no plan object.
    assert!(resp[&3].get("plan").is_none());

    // Observability: both wire stats and the final snapshot count them.
    assert_eq!(resp[&4].get("auto_planned").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.auto_planned, 2);
}

/// The auto differential: a `"scheme":"auto"` request is
/// indistinguishable from explicitly sending the fields its echoed plan
/// names — same fingerprint, bit-identical assignment, and the exact
/// same cache key (the auto twin of an explicit job never runs cold).
#[test]
fn auto_is_bit_identical_to_its_resolved_explicit_request() {
    let auto_line = r#"{"id":1,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"scheme":"auto","seed":7,"assignment":true}"#;
    let auto_line_12 = auto_line.replace(r#""id":1,"#, r#""id":12,"#);

    // Session A: run auto once and read back the resolved plan.
    let (lines, _) = run_session(&format!("{auto_line}\n"));
    let resp = by_id(&lines);
    let a1 = resp[&1];
    assert_eq!(a1.get("ok").and_then(Json::as_bool), Some(true));
    let plan = a1.get("plan").expect("auto responses echo the plan");
    let explicit_line = format!(
        r#"{{"id":1,"op":"color","graph":{{"gen":"rmat","scale":8,"seed":3}},"scheme":"{}","backend":"{}","shards":{},"exchange":"{}","seed":7,"assignment":true}}"#,
        plan.get("scheme").and_then(Json::as_str).unwrap(),
        plan.get("backend").and_then(Json::as_str).unwrap(),
        plan.get("shards").and_then(Json::as_u64).unwrap(),
        plan.get("exchange").and_then(Json::as_str).unwrap(),
    );

    // Session B (fresh cache): the explicit job first, then the auto
    // request — which must key to the explicit job's cache entry.
    let (lines, stats) = run_session(&format!("{explicit_line}\n{auto_line_12}\n"));
    let resp = by_id(&lines);
    let (b1, b2) = (resp[&1], resp[&12]);
    for r in [b1, b2] {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            r.get("fingerprint"),
            a1.get("fingerprint"),
            "all three requests name the same job"
        );
        assert_eq!(
            r.get("assignment"),
            a1.get("assignment"),
            "served colorings are bit-identical across sessions"
        );
    }
    assert_eq!(b2.get("plan"), a1.get("plan"), "planning is deterministic");
    assert!(b1.get("plan").is_none());
    assert_ne!(
        b2.get("source").and_then(Json::as_str),
        Some("cold"),
        "the auto twin of an explicit job shares its execution"
    );
    assert_eq!(stats.executions, 1, "one cold run served both requests");
}

//! End-to-end line protocol test: feed a scripted session through
//! `serve_lines` and check every response line, correlating by id
//! (responses to accepted jobs may arrive in any order).

use gcol_graph::gen::{self, RmatParams};
use gcol_serve::json::{self, Json};
use gcol_serve::{serve_lines, Service, ServiceConfig};
use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` the test can read back after `serve_lines` consumes it.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_session(input: &str) -> (Vec<Json>, gcol_serve::ServiceStats) {
    let svc = Service::start(ServiceConfig {
        num_workers: 2,
        ..ServiceConfig::default()
    });
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let resolve = |name: &str, scale: u32, seed: u64| match name {
        "rmat" => Ok(Arc::new(gen::rmat(RmatParams::erdos_renyi(scale, 8), seed))),
        other => Err(format!("unknown graph generator '{other}'")),
    };
    let stats = serve_lines(svc, input.as_bytes(), buf.clone(), &resolve).unwrap();
    let bytes = buf.0.lock().unwrap().clone();
    let lines = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).expect("every response line is valid JSON"))
        .collect();
    (lines, stats)
}

fn by_id(lines: &[Json]) -> HashMap<u64, &Json> {
    lines
        .iter()
        .filter_map(|l| l.get("id").and_then(Json::as_u64).map(|id| (id, l)))
        .collect()
}

#[test]
fn scripted_session_colors_inline_and_named_graphs() {
    let input = concat!(
        // Inline CSR: the Fig. 2 pentagon-ish graph.
        r#"{"id":1,"op":"color","graph":{"r":[0,2,6,9,11,14],"c":[1,2,0,2,3,4,0,1,4,1,4,1,2,3]},"scheme":"T-base","backend":"native","assignment":true}"#,
        "\n",
        // Named generator, default scheme.
        r#"{"id":2,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"backend":"native"}"#,
        "\n",
        // Identical repeat: must be a cache hit or coalesced, same colors.
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":8,"seed":3},"backend":"native"}"#,
        "\n",
        r#"{"id":4,"op":"stats"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    let resp = by_id(&lines);

    let r1 = resp[&1];
    assert_eq!(r1.get("ok").and_then(Json::as_bool), Some(true));
    assert!(r1.get("colors").and_then(Json::as_u64).unwrap() >= 3);
    let assignment = r1
        .get("assignment")
        .and_then(Json::as_arr)
        .expect("assignment requested");
    assert_eq!(assignment.len(), 5);
    assert_eq!(r1.get("source").and_then(Json::as_str), Some("cold"));

    let r2 = resp[&2];
    let r3 = resp[&3];
    assert_eq!(r2.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(r3.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        r2.get("colors").and_then(Json::as_u64),
        r3.get("colors").and_then(Json::as_u64)
    );
    assert_eq!(
        r2.get("fingerprint").and_then(Json::as_str),
        r3.get("fingerprint").and_then(Json::as_str),
        "identical requests share a fingerprint"
    );
    let src3 = r3.get("source").and_then(Json::as_str).unwrap();
    assert!(
        src3 == "cache-hit" || src3 == "coalesced",
        "repeat must reuse work, got {src3}"
    );

    // The stats line is a snapshot taken mid-session: only fields that
    // are stable at that point are asserted.
    let r4 = resp[&4];
    assert_eq!(r4.get("ok").and_then(Json::as_bool), Some(true));
    assert!(r4.get("accepted").and_then(Json::as_u64).unwrap() >= 1);

    // Final drained stats: 3 accepted color jobs, 2 executions (the
    // repeat reused one), nothing rejected.
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.executions, 2);
    assert_eq!(stats.cache_hits + stats.coalesced, 1);
    assert_eq!(stats.rejected_queue_full + stats.rejected_too_large, 0);
}

#[test]
fn bad_lines_get_typed_errors_and_do_not_kill_the_session() {
    let input = concat!(
        "this is not json\n",
        r#"{"id":7,"op":"color","graph":{"gen":"nope","scale":4,"seed":1}}"#,
        "\n",
        r#"{"id":8,"op":"color","graph":{"gen":"rmat","scale":4,"seed":1},"backend":"native"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    assert!(
        lines
            .iter()
            .any(|l| l.get("error").and_then(Json::as_str) == Some("bad-request")),
        "malformed line must produce a bad-request error"
    );
    let resp = by_id(&lines);
    assert_eq!(
        resp[&7].get("error").and_then(Json::as_str),
        Some("unknown-graph")
    );
    assert_eq!(resp[&8].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.accepted, 1);
}

#[test]
fn shutdown_request_acks_and_stops_reading() {
    let input = concat!(
        r#"{"id":1,"op":"color","graph":{"gen":"rmat","scale":4,"seed":9},"backend":"native"}"#,
        "\n",
        r#"{"id":2,"op":"shutdown"}"#,
        "\n",
        // Never read: the server stops at the shutdown request.
        r#"{"id":3,"op":"color","graph":{"gen":"rmat","scale":4,"seed":10},"backend":"native"}"#,
        "\n",
    );
    let (lines, stats) = run_session(input);
    let resp = by_id(&lines);
    assert_eq!(resp[&1].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        resp[&2].get("status").and_then(Json::as_str),
        Some("draining")
    );
    assert!(
        !resp.contains_key(&3),
        "lines after shutdown must not be served"
    );
    assert_eq!(stats.accepted, 1);
}

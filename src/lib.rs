//! # gcol — high-performance parallel graph coloring
//!
//! Umbrella crate for the reproduction of *"High Performance Parallel Graph
//! Coloring on GPGPUs"* (Li et al., IPDPS Workshops 2016). It re-exports the
//! workspace crates:
//!
//! * [`graph`] — CSR graphs, generators, IO, statistics ([`gcol_graph`]).
//! * [`scan`] — prefix-sum / compaction primitives ([`gcol_scan`]).
//! * [`simt`] — the SIMT GPU simulator substrate ([`gcol_simt`]).
//! * [`coloring`] — the coloring algorithms themselves ([`gcol_core`]).
//! * [`mod@bench`] — the paper's experiment harness ([`gcol_bench`]).
//!
//! ## Quickstart
//!
//! ```
//! use gcol::prelude::*;
//!
//! // Build a small graph, color it with the data-driven GPU scheme, verify.
//! let g = gcol::graph::gen::rmat(RmatParams::erdos_renyi(10, 8), 1);
//! let device = Device::k20c();
//! let result = Scheme::DataLdg.color(&g, &device, &ColorOptions::default());
//! assert!(verify_coloring(&g, &result.colors).is_ok());
//! println!("{} colors in {} iterations", result.num_colors, result.iterations);
//! ```

pub use gcol_bench as bench;
pub use gcol_core as coloring;
pub use gcol_graph as graph;
pub use gcol_scan as scan;
pub use gcol_simt as simt;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use gcol_core::{
        verify_coloring, ColorError, ColorOptions, Coloring, ColoringViolation, Scheme,
    };
    pub use gcol_graph::{gen::RmatParams, Csr, CsrBuilder, DegreeStats, VertexId};
    pub use gcol_simt::{Backend, BackendKind, Device, ExecMode, NativeBackend, SimtBackend};
}

//! Sparse Jacobian compression via distance-2 coloring — the application
//! the Gebremedhin–Manne coloring line (the paper's refs [9]/[10]) was
//! created for.
//!
//! To estimate the Jacobian of F: R^n → R^n with finite differences,
//! evaluating F once per column costs n evaluations. If two columns have
//! no row in common they can share one evaluation (perturb both inputs at
//! once and read off disjoint rows). "No row in common" is exactly
//! distance-2 independence in the column adjacency graph, so a distance-2
//! coloring packs the columns into `num_colors` groups — evaluating F
//! `num_colors` times instead of n.
//!
//! We build the 2-D Poisson 5-point operator, color its graph at
//! distance 2, recover the full (sparse) Jacobian from the compressed
//! evaluations, and check it entry-for-entry against the direct
//! column-by-column estimate.
//!
//! ```text
//! cargo run --release --example jacobian_compression
//! ```

use gcol::coloring::d2::{greedy_d2_seq, verify_d2_coloring};
use gcol::graph::gen::{grid2d, StencilKind};
use gcol::graph::Csr;

const NX: usize = 24;
const NY: usize = 24;

/// The (nonlinear, for flavor) residual F(u) of a discrete Poisson-like
/// operator: F_i(u) = 4 u_i - Σ_adj u_j + 0.01 u_i³.
fn residual(g: &Csr, u: &[f64]) -> Vec<f64> {
    (0..g.num_vertices())
        .map(|i| {
            let sigma: f64 = g.neighbors(i as u32).iter().map(|&j| u[j as usize]).sum();
            4.0 * u[i] - sigma + 0.01 * u[i].powi(3)
        })
        .collect()
}

fn main() {
    let g = grid2d(NX, NY, StencilKind::FivePoint);
    let n = g.num_vertices();
    println!("operator: {n} unknowns, 5-point stencil");

    // Distance-2 coloring of the column graph. (The Jacobian's sparsity
    // pattern is the stencil graph plus the diagonal; two columns sharing
    // a row ⇔ their vertices are identical, adjacent, or share a
    // neighbor — i.e. within distance 2.)
    let coloring = greedy_d2_seq(&g);
    verify_d2_coloring(&g, &coloring.colors).unwrap();
    println!(
        "distance-2 coloring: {} groups (vs {} naive column evaluations — \
         a {:.0}x compression)",
        coloring.num_colors,
        n,
        n as f64 / coloring.num_colors as f64
    );

    // Baseline point and step.
    let u0: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.1).collect();
    let f0 = residual(&g, &u0);
    let h = 1e-6;

    // Compressed evaluation: one perturbed residual per color group.
    let mut jac_compressed = vec![std::collections::HashMap::new(); n];
    for color in 1..=coloring.num_colors as u32 {
        let mut u = u0.clone();
        for (j, uj) in u.iter_mut().enumerate() {
            if coloring.colors[j] == color {
                *uj += h;
            }
        }
        let f = residual(&g, &u);
        // Each row i is touched by at most one perturbed column (that is
        // the distance-2 guarantee); attribute the difference to it.
        for i in 0..n {
            let df = (f[i] - f0[i]) / h;
            if df.abs() < 1e-3 {
                continue;
            }
            // The owning column: i itself or one of its neighbors with
            // this color.
            let col = if coloring.colors[i] == color {
                Some(i)
            } else {
                g.neighbors(i as u32)
                    .iter()
                    .map(|&j| j as usize)
                    .find(|&j| coloring.colors[j] == color)
            };
            let col = col.expect("difference must come from a d2 group member");
            jac_compressed[i].insert(col, df);
        }
    }

    // Reference: direct column-by-column finite differences.
    let mut max_err = 0.0f64;
    let mut checked = 0usize;
    for j in 0..n {
        let mut u = u0.clone();
        u[j] += h;
        let f = residual(&g, &u);
        for i in 0..n {
            let df = (f[i] - f0[i]) / h;
            if df.abs() < 1e-3 {
                continue;
            }
            let got = jac_compressed[i].get(&j).copied().unwrap_or(0.0);
            max_err = max_err.max((got - df).abs());
            checked += 1;
        }
    }
    println!(
        "recovered {checked} nonzero Jacobian entries from \
         {} evaluations; max |error| vs direct differencing = {max_err:.2e}",
        coloring.num_colors
    );
    assert!(
        max_err < 1e-4,
        "compressed Jacobian must match the direct one"
    );
    println!(
        "✓ the {}-color compressed Jacobian matches the {}-evaluation \
         direct estimate.",
        coloring.num_colors, n
    );
}

//! Quickstart: build a graph, color it with every scheme from the paper,
//! verify the colorings and print a small comparison — the 60-second tour
//! of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::gen::{rmat, RmatParams};
use gcol::simt::Device;

fn main() {
    // An R-MAT graph like the paper's rmat-er, at laptop scale:
    // 2^14 vertices, average degree 16.
    let g = rmat(RmatParams::erdos_renyi(14, 16), 42);
    println!(
        "graph: {} vertices, {} directed edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // The simulated device the GPU schemes run on.
    let device = Device::k20c();
    let opts = ColorOptions::default();

    println!(
        "\n{:<12} {:>8} {:>8} {:>12} {:>10}",
        "scheme", "colors", "rounds", "modeled ms", "speedup"
    );
    let seq_ms = Scheme::Sequential.color(&g, &device, &opts).total_ms();
    for scheme in Scheme::paper_seven() {
        let result = scheme.color(&g, &device, &opts);
        verify_coloring(&g, &result.colors).expect("coloring must be proper");
        println!(
            "{:<12} {:>8} {:>8} {:>12.3} {:>9.2}x",
            scheme.name(),
            result.num_colors,
            result.iterations,
            result.total_ms(),
            seq_ms / result.total_ms()
        );
    }

    println!(
        "\nAll colorings verified. Note the shape from the paper: the \
         speculative-greedy\nschemes match the sequential color count while \
         csrcolor needs several times more."
    );
}

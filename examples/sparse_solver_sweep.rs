//! Multicolor Gauss–Seidel — the sparse-linear-algebra application from
//! the paper's introduction (HPCG and incomplete-LU both use coloring to
//! expose parallelism in triangular sweeps).
//!
//! We discretize a 2-D Poisson problem with the 5-point stencil, color the
//! stencil graph, and run Gauss–Seidel where each sweep visits unknowns
//! color by color: within a color no two unknowns couple, so every color
//! class updates in parallel with Jacobi-free, true Gauss–Seidel
//! semantics. The example shows the solver converging monotonically; the
//! speculative-greedy coloring lands within a few colors of the textbook
//! red/black 2-coloring (first-fit under SIMT lockstep trades a couple of
//! extra colors for parallel construction, exactly the paper's trade).
//!
//! ```text
//! cargo run --release --example sparse_solver_sweep
//! ```

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::gen::{grid2d, StencilKind};
use gcol::simt::Device;
use rayon::prelude::*;

const NX: usize = 96;
const NY: usize = 96;
const SWEEPS: usize = 120;

fn main() {
    let n = NX * NY;
    let g = grid2d(NX, NY, StencilKind::FivePoint);
    println!(
        "Poisson 5-point stencil on a {NX}x{NY} grid: {} unknowns, {} couplings",
        n,
        g.num_edges() / 2
    );

    // Color the stencil graph on the simulated GPU.
    let device = Device::k20c();
    let coloring = Scheme::DataBase.color(&g, &device, &ColorOptions::default());
    verify_coloring(&g, &coloring.colors).unwrap();
    println!(
        "coloring: {} colors in {} rounds (textbook red/black needs 2)",
        coloring.num_colors, coloring.iterations
    );

    // Group unknowns by color once.
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); coloring.num_colors];
    for v in 0..n {
        classes[coloring.colors[v] as usize - 1].push(v);
    }

    // Solve A x = b with A = 4I - adjacency (diagonally dominant), b = 1.
    let b_rhs = 1.0f64;
    let mut x = vec![0.0f64; n];
    let mut last_residual = f64::INFINITY;
    for sweep in 1..=SWEEPS {
        for class in &classes {
            // True Gauss–Seidel: the freshest neighbor values, yet fully
            // parallel inside a color class because no two members couple.
            let updates: Vec<(usize, f64)> = class
                .par_iter()
                .map(|&v| {
                    let sigma: f64 = g.neighbors(v as u32).iter().map(|&w| x[w as usize]).sum();
                    (v, (b_rhs + sigma) / 4.0)
                })
                .collect();
            for (v, val) in updates {
                x[v] = val;
            }
        }
        if sweep % 30 == 0 || sweep == 1 {
            let residual: f64 = (0..n)
                .into_par_iter()
                .map(|v| {
                    let sigma: f64 = g.neighbors(v as u32).iter().map(|&w| x[w as usize]).sum();
                    let r = b_rhs - (4.0 * x[v] - sigma);
                    r * r
                })
                .sum::<f64>()
                .sqrt();
            println!("sweep {sweep:>4}: ||r||_2 = {residual:.6e}");
            assert!(
                residual < last_residual,
                "multicolor Gauss–Seidel must converge monotonically here"
            );
            last_residual = residual;
        }
    }
    println!(
        "converged: interior unknowns approach the PDE solution; coloring \
         exposed\n{}-way parallelism per sweep instead of a serial \
         wavefront.",
        n / coloring.num_colors
    );
}

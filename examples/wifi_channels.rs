//! Frequency assignment for wireless access points — the application of
//! the paper's ref. [14] (Riihijärvi et al.: "Frequency allocation for
//! WLANs using graph colouring techniques").
//!
//! Access points that are within interference range must not share a
//! channel. We drop APs uniformly at random on a square floor plan, build
//! the interference graph from a distance threshold (a unit-disk graph),
//! color it, and report the channel plan: how many channels are needed and
//! how fairly they are used. The example also demonstrates loading/saving
//! the graph through the MatrixMarket IO path.
//!
//! ```text
//! cargo run --release --example wifi_channels
//! ```

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::rng::Xoshiro256;
use gcol::graph::{io, CsrBuilder};
use gcol::simt::Device;

const NUM_APS: usize = 3_000;
const FLOOR_METERS: f64 = 500.0;
const INTERFERENCE_RANGE: f64 = 18.0;

fn main() {
    // Drop APs on the floor plan.
    let mut rng = Xoshiro256::seed_from_u64(2026);
    let positions: Vec<(f64, f64)> = (0..NUM_APS)
        .map(|_| (rng.next_f64() * FLOOR_METERS, rng.next_f64() * FLOOR_METERS))
        .collect();

    // Unit-disk interference graph via a coarse uniform grid (cell size =
    // range, so only neighbor cells need checking).
    let cell = INTERFERENCE_RANGE;
    let cells_per_side = (FLOOR_METERS / cell).ceil() as i64;
    let key = |x: f64, y: f64| -> (i64, i64) { ((x / cell) as i64, (y / cell) as i64) };
    let mut buckets = std::collections::HashMap::<(i64, i64), Vec<usize>>::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i);
    }
    let mut builder = CsrBuilder::new(NUM_APS);
    let mut interfering_pairs = 0usize;
    for (&(cx, cy), aps) in &buckets {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells_per_side || ny >= cells_per_side {
                    continue;
                }
                let Some(other) = buckets.get(&(nx, ny)) else {
                    continue;
                };
                for &a in aps {
                    for &b in other {
                        if a < b {
                            let (ax, ay) = positions[a];
                            let (bx, by) = positions[b];
                            let d2 = (ax - bx).powi(2) + (ay - by).powi(2);
                            if d2 <= INTERFERENCE_RANGE * INTERFERENCE_RANGE {
                                builder.add_edge(a as u32, b as u32);
                                interfering_pairs += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    let graph = builder.symmetrize().build();
    println!(
        "{NUM_APS} APs on a {FLOOR_METERS:.0}m floor, {interfering_pairs} \
         interfering pairs, worst AP sees {} others",
        graph.max_degree()
    );

    // Color = assign channels.
    let device = Device::k20c();
    let plan = Scheme::TopoLdg.color(&graph, &device, &ColorOptions::default());
    verify_coloring(&graph, &plan.colors).unwrap();

    let mut per_channel = vec![0usize; plan.num_colors];
    for &c in &plan.colors {
        per_channel[c as usize - 1] += 1;
    }
    println!(
        "channel plan: {} channels (2.4 GHz offers 3 non-overlapping, \
         5 GHz ~25)",
        plan.num_colors
    );
    for (ch, &count) in per_channel.iter().enumerate() {
        println!("  channel {:>2}: {:>5} APs", ch + 1, count);
    }

    // Round-trip the interference graph through MatrixMarket, proving the
    // IO path a site-survey tool would use.
    let mut mtx = Vec::new();
    io::write_matrix_market(&graph, &mut mtx).unwrap();
    let reloaded = io::read_matrix_market(std::io::BufReader::new(mtx.as_slice())).unwrap();
    assert_eq!(reloaded, graph);
    println!(
        "interference graph round-tripped through MatrixMarket \
         ({} KB) intact.",
        mtx.len() / 1024
    );
}

//! Chromatic scheduling — the concurrency-discovery application that
//! motivates the paper (§I: "vertices with the same color represent
//! subtasks that can be processed simultaneously", as in HPCG and
//! chromatic data-graph scheduling).
//!
//! We build a data-dependency conflict graph over a set of tasks that
//! update shared cells (two tasks conflict when they touch a common cell),
//! color it with the data-driven GPU scheme, and then execute the tasks
//! wave by wave: every wave is one color class, inside which all tasks run
//! in parallel with no conflicts. A deterministic checksum proves the
//! chromatic schedule produces the same result as fully sequential
//! execution.
//!
//! ```text
//! cargo run --release --example chromatic_scheduling
//! ```

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::rng::Xoshiro256;
use gcol::graph::CsrBuilder;
use gcol::simt::Device;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const NUM_CELLS: usize = 4_000;
const NUM_TASKS: usize = 20_000;
const TOUCHES_PER_TASK: usize = 3;

/// A task reads-modifies-writes a few cells.
struct Task {
    cells: Vec<usize>,
    weight: u64,
}

fn make_tasks(seed: u64) -> Vec<Task> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..NUM_TASKS)
        .map(|i| Task {
            cells: (0..TOUCHES_PER_TASK)
                .map(|_| rng.gen_index(NUM_CELLS))
                .collect(),
            weight: 1 + (i as u64 % 13),
        })
        .collect()
}

/// Applies one task: an order-independent commutative update per cell
/// (so any conflict-free schedule must give the sequential answer).
fn apply(task: &Task, cells: &[AtomicU64]) {
    for &c in &task.cells {
        cells[c].fetch_add(task.weight * (c as u64 + 1), Ordering::Relaxed);
    }
}

fn main() {
    let tasks = make_tasks(7);

    // Conflict graph: tasks sharing a cell get an edge.
    let mut cell_to_tasks: Vec<Vec<u32>> = vec![Vec::new(); NUM_CELLS];
    for (t, task) in tasks.iter().enumerate() {
        for &c in &task.cells {
            cell_to_tasks[c].push(t as u32);
        }
    }
    let mut builder = CsrBuilder::new(NUM_TASKS);
    for owners in &cell_to_tasks {
        for i in 0..owners.len() {
            for j in (i + 1)..owners.len() {
                builder.add_edge(owners[i], owners[j]);
            }
        }
    }
    let conflict_graph = builder.symmetrize().build();
    println!(
        "conflict graph: {} tasks, {} conflict edges, max degree {}",
        conflict_graph.num_vertices(),
        conflict_graph.num_edges() / 2,
        conflict_graph.max_degree()
    );

    // Color it on the simulated GPU.
    let device = Device::k20c();
    let result = Scheme::DataLdg.color(&conflict_graph, &device, &ColorOptions::default());
    verify_coloring(&conflict_graph, &result.colors).unwrap();
    println!(
        "chromatic schedule: {} waves (colors), found in {} rounds, \
         modeled {:.3} ms",
        result.num_colors,
        result.iterations,
        result.total_ms()
    );

    // Execute wave by wave; tasks inside a wave run concurrently.
    let cells: Vec<AtomicU64> = (0..NUM_CELLS).map(|_| AtomicU64::new(0)).collect();
    for wave in 1..=result.num_colors as u32 {
        let wave_tasks: Vec<usize> = (0..NUM_TASKS)
            .filter(|&t| result.colors[t] == wave)
            .collect();
        wave_tasks
            .par_iter()
            .for_each(|&t| apply(&tasks[t], &cells));
    }
    let chromatic_sum: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();

    // Sequential reference.
    let ref_cells: Vec<AtomicU64> = (0..NUM_CELLS).map(|_| AtomicU64::new(0)).collect();
    for task in &tasks {
        apply(task, &ref_cells);
    }
    let sequential_sum: u64 = ref_cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();

    assert_eq!(chromatic_sum, sequential_sum);
    println!(
        "checksum {chromatic_sum} matches sequential execution — the \
         chromatic schedule is sound.\naverage parallelism per wave: {:.0} tasks",
        NUM_TASKS as f64 / result.num_colors as f64
    );
}

//! A small command-line coloring tool: read any MatrixMarket (`.mtx`) or
//! DIMACS (`.col`) file, color it with a chosen scheme on the simulated
//! K20c, verify, and write the assignment — the workflow a practitioner
//! uses on SuiteSparse matrices (including the paper's own: thermal2,
//! atmosmodd, Hamrle3, G3_circuit) or on DIMACS coloring benchmarks.
//!
//! ```text
//! cargo run --release --example color_mtx -- path/to/matrix.mtx [scheme]
//! # scheme ∈ sequential | T-base | T-ldg | D-base | D-ldg | csrcolor | …
//! # Without arguments it demonstrates on a generated mesh.
//! ```
//!
//! Output: `<input>.colors` with one `vertex color` pair per line.

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::{gen, io, Csr};
use gcol::simt::Device;
use std::io::Write;

fn parse_scheme(name: &str) -> Option<Scheme> {
    [
        Scheme::Sequential,
        Scheme::ThreeStepGm,
        Scheme::TopoBase,
        Scheme::TopoLdg,
        Scheme::DataBase,
        Scheme::DataLdg,
        Scheme::CsrColor,
        Scheme::CpuGm,
        Scheme::CpuJp,
        Scheme::CpuRokos,
        Scheme::CpuJpLlf,
        Scheme::CpuJpSl,
    ]
    .into_iter()
    .find(|s| s.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let (graph, label): (Csr, String) = match args.first() {
        Some(path) => {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            let reader = std::io::BufReader::new(file);
            // Dispatch on extension: DIMACS .col or MatrixMarket .mtx.
            let g = if path.ends_with(".col") {
                io::read_dimacs(reader).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path} as DIMACS: {e}");
                    std::process::exit(1);
                })
            } else {
                io::read_matrix_market(reader).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path} as MatrixMarket: {e}");
                    std::process::exit(1);
                })
            };
            (g, path.clone())
        }
        None => {
            println!("no input given — demonstrating on a generated mesh\n");
            (gen::mesh2d(120, 120, 0.1, 1), "demo-mesh".to_string())
        }
    };

    let scheme = args
        .get(1)
        .map(|s| {
            parse_scheme(s).unwrap_or_else(|| {
                eprintln!("unknown scheme {s:?}");
                std::process::exit(1);
            })
        })
        .unwrap_or(Scheme::DataLdg);

    println!(
        "{label}: {} vertices, {} stored edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    let device = Device::k20c();
    let t0 = std::time::Instant::now();
    let result = scheme.color(&graph, &device, &ColorOptions::default());
    let host_secs = t0.elapsed().as_secs_f64();
    verify_coloring(&graph, &result.colors).expect("invalid coloring");

    println!(
        "{scheme}: {} colors in {} rounds — modeled {:.3} ms on the \
         simulated K20c\n(simulation itself took {host_secs:.2} s on this host)",
        result.num_colors,
        result.iterations,
        result.total_ms()
    );

    // Per-class histogram.
    let mut sizes = vec![0usize; result.num_colors];
    for &c in &result.colors {
        sizes[c as usize - 1] += 1;
    }
    let largest = sizes.iter().max().copied().unwrap_or(0);
    println!("largest color class: {largest} vertices (parallelism per wave)");

    // Write the assignment next to the input.
    let out_path = if !args.is_empty() {
        format!("{label}.colors")
    } else {
        std::env::temp_dir()
            .join("gcol-demo.colors")
            .to_string_lossy()
            .into_owned()
    };
    let mut out = std::io::BufWriter::new(std::fs::File::create(&out_path).expect("create output"));
    writeln!(out, "# {} colors by {}", result.num_colors, scheme.name()).unwrap();
    for (v, &c) in result.colors.iter().enumerate() {
        writeln!(out, "{v} {c}").unwrap();
    }
    println!("assignment written to {out_path}");
}
